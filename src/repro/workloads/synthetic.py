"""Synthetic input streams (§5.1).

The microbenchmarks use streams of numeric items from three sub-streams
A, B, C whose values follow either Gaussian or Poisson distributions:

* Gaussian (default):  A ~ N(10, 5),  B ~ N(1000, 50),  C ~ N(10000, 500)
* Gaussian (skew, §5.7): A ~ N(100, 10), B ~ N(1000, 100), C ~ N(10000, 1000)
  with population shares 80% / 19% / 1%
* Poisson:  A ~ Poi(10),  B ~ Poi(1000),  C ~ Poi(10⁸)
  with shares 80% / 19.99% / 0.01% in the skew experiment (§5.7-II)

Items are ``(source, value)`` tuples; `make_stream` assigns arrival
timestamps from per-sub-stream rates (items/second) via the replay tool's
deterministic interleaver, yielding the time-ordered ``(timestamp, item)``
stream every system consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Tuple

from ..aggregator.replay import interleave_substreams
from ..core.records import RecordBatch

__all__ = [
    "SubStreamSpec",
    "gaussian_substreams",
    "gaussian_skew_substreams",
    "poisson_substreams",
    "poisson_skew_substreams",
    "make_stream",
    "stream_by_rates",
    "stream_by_shares",
]

Item = Tuple[Hashable, float]


@dataclass(frozen=True)
class SubStreamSpec:
    """One sub-stream: its source id and value distribution."""

    source: Hashable
    distribution: str  # "gaussian" | "poisson"
    mu: float = 0.0
    sigma: float = 1.0
    lam: float = 1.0

    def values(self, rng: random.Random) -> Iterator[float]:
        if self.distribution == "gaussian":
            while True:
                yield rng.gauss(self.mu, self.sigma)
        elif self.distribution == "poisson":
            while True:
                yield float(_poisson(rng, self.lam))
        else:
            raise ValueError(f"unknown distribution {self.distribution!r}")


def _poisson(rng: random.Random, lam: float) -> int:
    """Poisson sampling: Knuth for small λ, normal approximation for large.

    The paper's sub-stream C uses λ = 10⁸, far beyond Knuth's method; the
    normal approximation N(λ, √λ) is accurate there to ~10⁻⁴ relative.
    """
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    if lam > 500:
        return max(0, int(round(rng.gauss(lam, lam ** 0.5))))
    threshold = 2.718281828459045 ** (-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def gaussian_substreams() -> List[SubStreamSpec]:
    """§5.1 defaults: A ~ N(10,5), B ~ N(1000,50), C ~ N(10000,500)."""
    return [
        SubStreamSpec("A", "gaussian", mu=10, sigma=5),
        SubStreamSpec("B", "gaussian", mu=1000, sigma=50),
        SubStreamSpec("C", "gaussian", mu=10000, sigma=500),
    ]


def gaussian_skew_substreams() -> List[SubStreamSpec]:
    """§5.7-I: A ~ N(100,10), B ~ N(1000,100), C ~ N(10000,1000)."""
    return [
        SubStreamSpec("A", "gaussian", mu=100, sigma=10),
        SubStreamSpec("B", "gaussian", mu=1000, sigma=100),
        SubStreamSpec("C", "gaussian", mu=10000, sigma=1000),
    ]


def poisson_substreams() -> List[SubStreamSpec]:
    """§5.1 Poisson: A ~ Poi(10), B ~ Poi(1000), C ~ Poi(10⁸)."""
    return [
        SubStreamSpec("A", "poisson", lam=10),
        SubStreamSpec("B", "poisson", lam=1000),
        SubStreamSpec("C", "poisson", lam=100_000_000),
    ]


def poisson_skew_substreams() -> List[SubStreamSpec]:
    """§5.7-II uses the same Poisson parameters with skewed shares."""
    return poisson_substreams()


def make_stream(
    specs: List[SubStreamSpec],
    rates: Dict[Hashable, float],
    duration: float,
    seed: int = 0,
) -> List[Tuple[float, Item]]:
    """Interleave sub-streams at given rates (items/s) for ``duration`` s.

    Returns the time-ordered ``(timestamp, (source, value))`` stream the
    systems consume, as a `repro.core.records.RecordBatch` (a list subclass
    that also exposes NumPy timestamp/key/value columns for the runtime's
    columnar path).  Each sub-stream gets an independent child RNG, so
    changing one rate never perturbs another sub-stream's values.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    base = random.Random(seed)
    substreams = {}
    for spec in specs:
        if spec.source not in rates:
            continue
        rate = rates[spec.source]
        count = int(rate * duration)
        rng = random.Random(base.getrandbits(64))
        values = spec.values(rng)
        items = [(spec.source, next(values)) for _ in range(count)]
        if items:
            substreams[spec.source] = (rate, items)
    return RecordBatch(interleave_substreams(substreams))


def stream_by_rates(
    rates: Dict[Hashable, float],
    duration: float,
    specs: List[SubStreamSpec] = None,
    seed: int = 0,
) -> List[Tuple[float, Item]]:
    """§5.4 experiment: Gaussian sub-streams at explicit A:B:C rates."""
    if specs is None:
        specs = gaussian_substreams()
    return make_stream(specs, rates, duration, seed=seed)


def stream_by_shares(
    specs: List[SubStreamSpec],
    shares: Dict[Hashable, float],
    total_rate: float,
    duration: float,
    seed: int = 0,
) -> List[Tuple[float, Item]]:
    """§5.7 experiments: population shares (e.g. 80/19/1%) of a total rate."""
    total_share = sum(shares.values())
    if abs(total_share - 1.0) > 1e-6:
        raise ValueError(f"shares must sum to 1, got {total_share}")
    rates = {source: max(total_rate * share, 1e-9) for source, share in shares.items()}
    return make_stream(specs, rates, duration, seed=seed)
