"""Input-stream workload generators for the evaluation.

* `repro.workloads.synthetic` — the §5.1 Gaussian/Poisson microbenchmark
  streams (including the §5.7 skew mixes),
* `repro.workloads.netflow` — CAIDA-like NetFlow flows (case study 1),
* `repro.workloads.taxi` — NYC-taxi-like rides (case study 2).
"""

from .netflow import (
    FLOW_SIZE_PARAMS,
    PROTOCOL_MIX,
    FlowRecord,
    flow_bytes,
    flow_protocol,
    generate_flows,
    netflow_stream,
)
from .synthetic import (
    SubStreamSpec,
    gaussian_skew_substreams,
    gaussian_substreams,
    make_stream,
    poisson_skew_substreams,
    poisson_substreams,
    stream_by_rates,
    stream_by_shares,
)
from .taxi import (
    BOROUGH_MIX,
    BOROUGHS,
    TRIP_DISTANCE_PARAMS,
    TaxiRide,
    generate_rides,
    ride_borough,
    ride_distance,
    taxi_stream,
)

__all__ = [
    "BOROUGHS",
    "BOROUGH_MIX",
    "FLOW_SIZE_PARAMS",
    "FlowRecord",
    "PROTOCOL_MIX",
    "SubStreamSpec",
    "TRIP_DISTANCE_PARAMS",
    "TaxiRide",
    "flow_bytes",
    "flow_protocol",
    "gaussian_skew_substreams",
    "gaussian_substreams",
    "generate_flows",
    "generate_rides",
    "make_stream",
    "netflow_stream",
    "poisson_skew_substreams",
    "poisson_substreams",
    "ride_borough",
    "ride_distance",
    "stream_by_rates",
    "stream_by_shares",
    "taxi_stream",
]
