"""Figure 6(b): throughput at a fixed accuracy loss (Gaussian skew stream).

Paper setting: the 80/19/1% skewed Gaussian stream of §5.7-I; every system
is tuned to the same accuracy loss (0.5% and 1%) and throughput is
compared.  Paper result at 1%: STS 1.05× over SRS, Spark-StreamApprox
1.25× over STS, Flink-StreamApprox 1.26× over Spark-StreamApprox.

Tuning works as in practice: sweep the sampling fraction downward and keep
the smallest fraction whose measured loss stays within the target.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import MICRO_QUERY, WINDOW, config, publish

TARGETS = (0.005, 0.01)
FRACTIONS = (0.8, 0.6, 0.4, 0.2, 0.1, 0.05)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def tune_and_measure(stream):
    collector = ExperimentCollector("fig6b_throughput_at_accuracy")
    for target in TARGETS:
        for cls in SYSTEMS:
            chosen = None
            for fraction in FRACTIONS:  # descending: keep the cheapest OK run
                report = cls(MICRO_QUERY, WINDOW, config(fraction)).run(stream)
                if report.mean_accuracy_loss() <= target:
                    chosen = report
                else:
                    break
            if chosen is None:  # cannot hit the target: report the best
                chosen = cls(MICRO_QUERY, WINDOW, config(0.9)).run(stream)
            collector.record(f"{target:.1%}", chosen)
    return collector


def test_fig6b(benchmark, gaussian_skew_stream):
    collector = benchmark.pedantic(
        tune_and_measure, args=(gaussian_skew_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("throughput", "accuracy_loss"))

    for target in ("0.5%", "1.0%"):
        thr = {cls.name: collector.value(cls.name, target, "throughput") for cls in SYSTEMS}
        # Both StreamApprox flavours beat both Spark baselines at equal
        # accuracy (the paper's ordering, with Flink on top).
        for approx in ("spark-streamapprox", "flink-streamapprox"):
            assert thr[approx] > thr["spark-sts"]
            assert thr[approx] > 0.9 * thr["spark-srs"]
        assert thr["spark-streamapprox"] > thr["spark-srs"]

        # Accuracy targets were actually met by the stratified systems.
        for system in ("spark-streamapprox", "flink-streamapprox"):
            assert collector.value(system, target, "accuracy_loss") <= float(
                target.strip("%")
            ) / 100 + 1e-9
