"""Ablation: the §4.2 adaptive sample-size feedback loop.

The error-estimation module re-tunes the sample size whenever the measured
error bound exceeds the target.  This bench runs the loop end-to-end on a
live OASRS sampler: start from a deliberately tiny sample size, let the
measured relative error margin drive `AdaptiveSampleSizeController`, and
check that (a) the loop converges onto the accuracy target within a few
intervals and (b) it does not permanently over-sample once converged
(gain scheduling matters — the ablation sweeps the growth factor).
"""

import random

from repro.core.budget import AdaptiveSampleSizeController
from repro.core.error import estimate_error
from repro.core.oasrs import OASRSSampler, WaterFillingAllocation
from repro.core.query import approximate_mean

from conftest import KEY, RESULTS_DIR, VAL

TARGET = 0.01  # ±1% relative margin at 95% confidence
INTERVALS = 30


def run_loop(growth, seed=7):
    rng = random.Random(seed)
    controller = AdaptiveSampleSizeController(
        initial_size=50, target_relative_margin=TARGET, growth=growth
    )
    policy = WaterFillingAllocation(controller.current_size, expected_strata=2)
    sampler = OASRSSampler(policy, key_fn=KEY, rng=random.Random(seed + 1))
    margins, sizes = [], []
    for _ in range(INTERVALS):
        items = [("A", rng.gauss(100, 30)) for _ in range(8000)] + [
            ("B", rng.gauss(500, 80)) for _ in range(2000)
        ]
        rng.shuffle(items)
        sampler.offer_many(items)
        sample = sampler.close_interval()
        bound = estimate_error(approximate_mean(sample, VAL), confidence=0.95)
        margins.append(bound.relative_margin)
        sizes.append(controller.current_size)
        policy.total = controller.update(bound.relative_margin)
    return margins, sizes


def sweep():
    return {growth: run_loop(growth) for growth in (1.2, 1.5, 2.0)}


def test_ablation_feedback(benchmark):
    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ablation_feedback — intervals to reach ±1% target, final size"]
    for growth, (margins, sizes) in outcomes.items():
        converged_at = next(
            (i for i, m in enumerate(margins) if m <= TARGET), len(margins)
        )
        lines.append(
            f"growth={growth:3.1f}  converged_at_interval={converged_at:2d}  "
            f"final_size={sizes[-1]:6d}  final_margin={margins[-1]:.4f}"
        )
        benchmark.extra_info[f"converged_at/growth={growth}"] = converged_at

        # (a) the loop reaches the target before the run ends; aggressive
        # gains get there within a handful of intervals (multiplicative
        # growth from size 50 needs ≈ log_growth(needed/50) steps).
        assert converged_at < INTERVALS - 5
        if growth >= 1.5:
            assert converged_at <= 12
        # (b) ...and the settled margin stays in a band around the target:
        # accurate enough, but not wastefully over-sampled (≥ target/4).
        settled = margins[-5:]
        assert max(settled) < TARGET * 2.0
        assert min(settled) > TARGET / 6

    # Larger gain converges at least as fast (in intervals) as smaller gain.
    conv = {g: next((i for i, m in enumerate(m_s[0]) if m <= TARGET), 99) for g, m_s in outcomes.items()}
    assert conv[2.0] <= conv[1.2]

    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_feedback.txt").write_text(text + "\n")
