"""Telemetry overhead: the observability layer must be (nearly) free.

The ISSUE-10 contract for `repro.obs` is two-sided:

* **disabled** telemetry costs ~nothing — the run loops call shared no-op
  singletons a handful of times per *interval*, never per item;
* **enabled** telemetry (full tracing + metrics) stays within a few
  percent of the bare run on the fig6a microbenchmark, because spans and
  counters are recorded per interval/stage while items number in the
  tens of thousands.

This benchmark measures both sides on the fig6a workload and operating
point (`NativeStreamApproxSystem`, 40% fraction, chunk=1024), best-of-N
to shrug off scheduler noise.  Wall-clock deltas of a few percent are
within run-to-run noise on shared runners, so the overhead gate arms
only when ``REPRO_OBS_MAX_OVERHEAD_PCT`` is set (CI sets 5); what is
always asserted is that the telemetry-on run actually *collected* — a
pane-stage row per pane, item counters reconciling with the stream, and
a span tree rooted at ``run``.

Artifacts: ``benchmarks/results/BENCH_obs.json`` (the overhead
measurement) and ``benchmarks/results/obs_trace.json`` (the enabled
run's chrome://tracing export, uploaded by CI next to the BENCH files).
"""

import json
import os

from repro.obs import RunTelemetry, write_chrome_trace
from repro.system import NativeStreamApproxSystem, SystemConfig

from conftest import MICRO_QUERY, RESULTS_DIR, WINDOW

FRACTION = 0.4  # the fig6a operating point
CHUNK = 1024
REPEATS = 5  # best-of, to shrug off scheduler noise
#: Max tolerated telemetry-on slowdown, percent.  Unset => report only.
MAX_OVERHEAD_PCT = os.environ.get("REPRO_OBS_MAX_OVERHEAD_PCT")


def _config(telemetry=None):
    return SystemConfig(
        sampling_fraction=FRACTION, seed=21, chunk_size=CHUNK, telemetry=telemetry
    )


def _best_wall(stream, telemetry=False):
    """Best-of-REPEATS wall seconds; returns the fastest run's collector."""
    best_wall, best_collector = float("inf"), None
    for _ in range(REPEATS):
        collector = RunTelemetry() if telemetry else None
        system = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, _config(collector))
        _results, _cluster, wall = system.timed_execute(stream)
        if wall < best_wall:
            best_wall, best_collector = wall, collector
    return best_wall, best_collector


def measure(stream):
    wall_off, _ = _best_wall(stream)
    wall_on, collector = _best_wall(stream, telemetry=True)
    return wall_off, wall_on, collector


def test_obs_overhead(benchmark, micro_stream):
    wall_off, wall_on, collector = benchmark.pedantic(
        measure, args=(micro_stream,), rounds=1, iterations=1
    )
    overhead_pct = (wall_on / wall_off - 1.0) * 100.0
    items_per_s_off = len(micro_stream) / wall_off
    items_per_s_on = len(micro_stream) / wall_on

    lines = [
        "obs_overhead — telemetry cost on the fig6a microbenchmark",
        f"{'mode':<18}{'wall (s)':>10}{'items/s':>14}",
        f"{'telemetry off':<18}{wall_off:>10.4f}{items_per_s_off:>14,.0f}",
        f"{'telemetry on':<18}{wall_on:>10.4f}{items_per_s_on:>14,.0f}",
        f"overhead: {overhead_pct:+.2f}%"
        + (f" (gate: <= {MAX_OVERHEAD_PCT}%)" if MAX_OVERHEAD_PCT else " (ungated)"),
    ]
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.txt").write_text(text + "\n")
    benchmark.extra_info["overhead_pct"] = round(overhead_pct, 2)
    benchmark.extra_info["items_per_s/off"] = round(items_per_s_off, 1)
    benchmark.extra_info["items_per_s/on"] = round(items_per_s_on, 1)

    # The enabled run really collected: stage rows cover the panes, the
    # item counters reconcile with the stream, the span forest has one
    # root, and the trace exports cleanly.
    assert collector.pane_stages
    counters = collector.metrics.snapshot()["counters"]
    assert counters["items.observed"] == len(micro_stream)
    assert counters["panes"] == len(collector.pane_stages)
    assert [root.name for root in collector.tracer.roots] == ["run"]
    write_chrome_trace(
        RESULTS_DIR / "obs_trace.json",
        [("native-streamapprox", collector.tracer)],
    )

    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(
            {
                "benchmark": "obs_overhead",
                "workload": {
                    "fraction": FRACTION, "chunk": CHUNK, "repeats": REPEATS,
                    "items": len(micro_stream),
                },
                "machine": {"cpu_count": os.cpu_count()},
                "gates": {
                    "max_overhead_pct": (
                        float(MAX_OVERHEAD_PCT) if MAX_OVERHEAD_PCT else None
                    ),
                },
                "wall_seconds": {
                    "telemetry_off": round(wall_off, 6),
                    "telemetry_on": round(wall_on, 6),
                },
                "overhead_pct": round(overhead_pct, 3),
                "spans": sum(1 for _ in collector.tracer.spans()),
                "stage_seconds": {
                    k: round(v, 6) for k, v in collector.stage_seconds().items()
                },
            },
            indent=2,
        )
        + "\n"
    )

    if MAX_OVERHEAD_PCT is not None:
        assert overhead_pct <= float(MAX_OVERHEAD_PCT), (
            f"telemetry overhead {overhead_pct:.2f}% exceeds the "
            f"{MAX_OVERHEAD_PCT}% gate"
        )
