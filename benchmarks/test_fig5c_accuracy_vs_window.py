"""Figure 5(c): accuracy loss with varying window sizes (10–40 s, 60%).

Paper finding: like throughput (Fig. 5b), accuracy is essentially flat in
the window size — each pane merges per-interval samples whose quality is
set by the sampling fraction, not by how many intervals a window spans.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    WindowConfig,
)

from conftest import MICRO_QUERY, config, publish, run_sweep
from test_fig5b_throughput_vs_window import WINDOW_SIZES, long_stream

SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig5c_accuracy_vs_window")
    runs = []
    for size in WINDOW_SIZES:
        window = WindowConfig(length=size, slide=5.0)
        runs.extend(
            (size, cls(MICRO_QUERY, window, config(0.6)), stream) for cls in SYSTEMS
        )
    return run_sweep(collector, runs)


def test_fig5c(benchmark):
    stream = long_stream()
    collector = benchmark.pedantic(sweep, args=(stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("accuracy_loss",))

    # Stratified systems stay well below SRS at every window size.
    for size in WINDOW_SIZES:
        srs = collector.value("spark-srs", size, "accuracy_loss")
        for system in ("spark-streamapprox", "flink-streamapprox", "spark-sts"):
            assert collector.value(system, size, "accuracy_loss") < srs

    # No trend with the window size: losses stay inside a small band.
    for cls in SYSTEMS:
        series = [collector.value(cls.name, s, "accuracy_loss") for s in WINDOW_SIZES]
        assert max(series) - min(series) < 0.008
