"""Figure 9(a): NYC-taxi case study — throughput vs sampling fraction.

Paper setting (§6.3): DEBS-2015-style taxi rides, query = average trip
distance per start borough per sliding window.  Results mirror the first
case study: Spark-StreamApprox ≈ SRS and ≈2× STS; Flink-StreamApprox
≈1.5× over Spark-StreamApprox; 1.2×/1.28× over native Spark/Flink at 60%;
and native Spark again beats Spark-STS.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import TAXI_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8)
SAMPLED = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig9a_taxi_throughput")
    runs = []
    for fraction in FRACTIONS:
        runs.extend(
            (fraction, cls(TAXI_QUERY, WINDOW, config(fraction)), stream)
            for cls in SAMPLED
        )
    for cls in (NativeSparkSystem, NativeFlinkSystem):
        runs.append(("native", cls(TAXI_QUERY, WINDOW, config(1.0)), stream))
    return run_sweep(collector, runs)


def test_fig9a(benchmark, taxi_case_stream):
    collector = benchmark.pedantic(
        sweep, args=(taxi_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("throughput",))

    thr = lambda system, setting: collector.value(system, setting, "throughput")  # noqa: E731

    # Roughly 2× over STS, parity with SRS (paper's headline for Fig. 9a).
    assert thr("spark-streamapprox", 0.2) / thr("spark-sts", 0.2) > 1.8
    assert 0.85 < thr("spark-streamapprox", 0.6) / thr("spark-srs", 0.6) < 1.5

    # Flink flavour on top at every fraction.
    for fraction in FRACTIONS:
        assert thr("flink-streamapprox", fraction) > thr("spark-streamapprox", fraction)

    # Speedup over the native executions at 60% (paper: 1.2× / 1.28×).
    assert thr("spark-streamapprox", 0.6) / thr("native-spark", "native") > 1.1
    assert thr("flink-streamapprox", 0.6) / thr("native-flink", "native") > 1.1

    # Native Spark again beats Spark-STS.
    assert thr("native-spark", "native") > thr("spark-sts", 0.6)
