"""Figure 4(a): throughput vs sampling fraction, all six systems.

Paper series (Gaussian microbenchmark): Flink-based StreamApprox on top,
then Spark-based StreamApprox ≈ Spark-based SRS, then the native systems,
with Spark-based STS at the bottom.  Headline ratios at 60% / 10%:
StreamApprox over STS 1.68× / 2.60× (Spark) and 2.13× / 3× (Flink);
Spark-SA 1.8× and Flink-SA 1.65× over their native executions at 60%.

The simulated sweep above is the figure; ``test_fig4a_columnar_wall_clock``
adds the repo's own wall-clock companion: the same microbenchmark run A/B
with the columnar record path on (default) and off (the per-item shim,
``REPRO_NO_COLUMNAR=1``).  Both modes produce bitwise-identical pane
estimates — only the wall clock moves — and the measured speedup is
persisted to ``benchmarks/results/BENCH_fig4a.json`` and gated by
``REPRO_FIG4A_MIN_COLUMNAR_SPEEDUP`` (default "1.0": never slower; CI sets
"1.2" on real runners).
"""

import json
import os

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    SystemConfig,
)

from conftest import MICRO_QUERY, RESULTS_DIR, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8)
SAMPLED = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig4a_throughput_vs_fraction")
    runs = []
    for fraction in FRACTIONS:
        for cls in SAMPLED:
            runs.append((fraction, cls(MICRO_QUERY, WINDOW, config(fraction)), stream))
    for cls in (NativeSparkSystem, NativeFlinkSystem):
        runs.append(("native", cls(MICRO_QUERY, WINDOW, config(1.0)), stream))
    return run_sweep(collector, runs)


def test_fig4a(benchmark, micro_stream):
    collector = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("throughput",))

    thr = lambda system, setting: collector.value(system, setting, "throughput")  # noqa: E731

    # Flink-based StreamApprox posts the highest throughput at every fraction.
    for fraction in FRACTIONS:
        others = [
            thr(s, fraction)
            for s in ("spark-streamapprox", "spark-srs", "spark-sts")
        ]
        assert thr("flink-streamapprox", fraction) > max(others)

    # StreamApprox over STS: ≈1.7× at 60%, ≈2.6× at 10% (paper's ratios).
    assert 1.3 < thr("spark-streamapprox", 0.6) / thr("spark-sts", 0.6) < 2.4
    assert 2.0 < thr("spark-streamapprox", 0.1) / thr("spark-sts", 0.1) < 4.0

    # Speedup over the native executions at 60% sampling (paper: 1.8 / 1.65).
    assert 1.15 < thr("spark-streamapprox", 0.6) / thr("native-spark", "native") < 2.2
    assert 1.1 < thr("flink-streamapprox", 0.6) / thr("native-flink", "native") < 2.2

    # SRS tracks StreamApprox's throughput (it loses on accuracy instead).
    assert 0.85 < thr("spark-streamapprox", 0.6) / thr("spark-srs", 0.6) < 1.5

    # Throughput grows monotonically as the sampling fraction shrinks.
    sa = [thr("spark-streamapprox", f) for f in FRACTIONS]
    assert all(a > b for a, b in zip(sa, sa[1:]))


# ---------------------------------------------------------------------------
# Wall-clock companion: columnar record path vs the per-item shim
# ---------------------------------------------------------------------------

AB_FRACTIONS = (0.1, 0.6)  # the paper's headline operating points
AB_CHUNK = 1024
AB_REPEATS = 3  # best-of, to shrug off scheduler noise
MIN_COLUMNAR_SPEEDUP = float(
    os.environ.get("REPRO_FIG4A_MIN_COLUMNAR_SPEEDUP", "1.0")
)


def _wall_run(stream, fraction, shim):
    """Best-of-AB_REPEATS items/s (and one report) for one mode."""
    best = 0.0
    results = None
    for _ in range(AB_REPEATS):
        cfg = SystemConfig(sampling_fraction=fraction, seed=21, chunk_size=AB_CHUNK)
        system = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, cfg)
        if shim:
            os.environ["REPRO_NO_COLUMNAR"] = "1"
        try:
            panes, _cluster, wall = system.timed_execute(stream)
        finally:
            if shim:
                os.environ.pop("REPRO_NO_COLUMNAR", None)
        fallback = system._run_info.get("columnar_fallback")
        if shim:
            assert fallback is not None, "shim run unexpectedly took the columnar path"
        else:
            assert fallback is None, f"columnar path silently degraded: {fallback}"
        best = max(best, len(stream) / wall)
        results = panes
    return best, results


def test_fig4a_columnar_wall_clock(micro_stream):
    rows = []
    for fraction in AB_FRACTIONS:
        columnar, columnar_panes = _wall_run(micro_stream, fraction, shim=False)
        shim, shim_panes = _wall_run(micro_stream, fraction, shim=True)
        # Same seed, same sampling decisions: the record format is an
        # execution detail, so the estimates agree bitwise.
        assert [(r.end, r.estimate, r.sampled_items) for r in columnar_panes] == (
            [(r.end, r.estimate, r.sampled_items) for r in shim_panes]
        )
        rows.append(
            {
                "fraction": fraction,
                "columnar_items_per_s": round(columnar, 1),
                "shim_items_per_s": round(shim, 1),
                "columnar_speedup": round(columnar / shim, 3),
            }
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "fig4a_columnar_wall_clock",
        "workload": {"chunk_size": AB_CHUNK, "repeats": AB_REPEATS},
        "machine": {"cpu_count": os.cpu_count()},
        "gates": {"min_columnar_speedup": MIN_COLUMNAR_SPEEDUP},
        "rows": rows,
    }
    (RESULTS_DIR / "BENCH_fig4a.json").write_text(json.dumps(payload, indent=2) + "\n")

    for row in rows:
        assert row["columnar_speedup"] >= MIN_COLUMNAR_SPEEDUP, (
            f"columnar path only {row['columnar_speedup']}x the per-item shim "
            f"at fraction={row['fraction']} "
            f"(gate REPRO_FIG4A_MIN_COLUMNAR_SPEEDUP={MIN_COLUMNAR_SPEEDUP})"
        )
