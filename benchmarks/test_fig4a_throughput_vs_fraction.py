"""Figure 4(a): throughput vs sampling fraction, all six systems.

Paper series (Gaussian microbenchmark): Flink-based StreamApprox on top,
then Spark-based StreamApprox ≈ Spark-based SRS, then the native systems,
with Spark-based STS at the bottom.  Headline ratios at 60% / 10%:
StreamApprox over STS 1.68× / 2.60× (Spark) and 2.13× / 3× (Flink);
Spark-SA 1.8× and Flink-SA 1.65× over their native executions at 60%.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import MICRO_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8)
SAMPLED = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig4a_throughput_vs_fraction")
    runs = []
    for fraction in FRACTIONS:
        for cls in SAMPLED:
            runs.append((fraction, cls(MICRO_QUERY, WINDOW, config(fraction)), stream))
    for cls in (NativeSparkSystem, NativeFlinkSystem):
        runs.append(("native", cls(MICRO_QUERY, WINDOW, config(1.0)), stream))
    return run_sweep(collector, runs)


def test_fig4a(benchmark, micro_stream):
    collector = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("throughput",))

    thr = lambda system, setting: collector.value(system, setting, "throughput")  # noqa: E731

    # Flink-based StreamApprox posts the highest throughput at every fraction.
    for fraction in FRACTIONS:
        others = [
            thr(s, fraction)
            for s in ("spark-streamapprox", "spark-srs", "spark-sts")
        ]
        assert thr("flink-streamapprox", fraction) > max(others)

    # StreamApprox over STS: ≈1.7× at 60%, ≈2.6× at 10% (paper's ratios).
    assert 1.3 < thr("spark-streamapprox", 0.6) / thr("spark-sts", 0.6) < 2.4
    assert 2.0 < thr("spark-streamapprox", 0.1) / thr("spark-sts", 0.1) < 4.0

    # Speedup over the native executions at 60% sampling (paper: 1.8 / 1.65).
    assert 1.15 < thr("spark-streamapprox", 0.6) / thr("native-spark", "native") < 2.2
    assert 1.1 < thr("flink-streamapprox", 0.6) / thr("native-flink", "native") < 2.2

    # SRS tracks StreamApprox's throughput (it loses on accuracy instead).
    assert 0.85 < thr("spark-streamapprox", 0.6) / thr("spark-srs", 0.6) < 1.5

    # Throughput grows monotonically as the sampling fraction shrinks.
    sa = [thr("spark-streamapprox", f) for f in FRACTIONS]
    assert all(a > b for a, b in zip(sa, sa[1:]))
