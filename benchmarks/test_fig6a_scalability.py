"""Figure 6(a): scalability — throughput vs #cores and #nodes (40% fraction).

Paper series: StreamApprox and Spark-SRS scale near-linearly with cores and
nodes, while Spark-STS scales poorly because of its synchronization (at one
8-core node StreamApprox/SRS are ≈1.8× STS; at three nodes ≈2.3×).
Flink-based StreamApprox stays on top throughout.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import MICRO_QUERY, WINDOW, config, publish, run_sweep

CORES = (2, 4, 6, 8)  # single node, scale-up
NODES = (1, 2, 3, 4)  # 8 cores each, scale-out
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig6a_scalability")
    runs = []
    for cores in CORES:
        cfg = config(0.4, nodes=1, cores_per_node=cores)
        runs.extend(
            (f"{cores}-cores", cls(MICRO_QUERY, WINDOW, cfg), stream) for cls in SYSTEMS
        )
    for nodes in NODES:
        cfg = config(0.4, nodes=nodes, cores_per_node=8)
        runs.extend(
            (f"{nodes}-nodes", cls(MICRO_QUERY, WINDOW, cfg), stream) for cls in SYSTEMS
        )
    return run_sweep(collector, runs)


def test_fig6a(benchmark, micro_stream):
    collector = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("throughput",))

    thr = lambda system, setting: collector.value(system, setting, "throughput")  # noqa: E731

    # Scale-up: every system gains from 2 to 8 cores.
    for cls in SYSTEMS:
        assert thr(cls.name, "8-cores") > thr(cls.name, "2-cores")

    # Scale-out: StreamApprox keeps gaining with nodes...
    assert thr("spark-streamapprox", "4-nodes") > thr("spark-streamapprox", "1-nodes")

    # ...and scales better than STS (the paper's 1.8× → 2.3× spread).
    sa_scaling = thr("spark-streamapprox", "3-nodes") / thr("spark-streamapprox", "1-nodes")
    sts_scaling = thr("spark-sts", "3-nodes") / thr("spark-sts", "1-nodes")
    assert sa_scaling > sts_scaling

    # Flink-based StreamApprox leads at one node and at three nodes.
    for setting in ("1-nodes", "3-nodes"):
        assert thr("flink-streamapprox", setting) >= thr("spark-streamapprox", setting)
