"""Figure 5(b): throughput with varying window sizes (10–40 s, 60% fraction).

Paper finding: window size barely moves throughput, because sampling runs
per batch interval (Spark systems) or per slide interval (Flink), not per
window — larger windows only merge more already-sampled intervals.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    WindowConfig,
)
from repro.workloads.synthetic import stream_by_rates

from conftest import MICRO_QUERY, SCALE, config, publish, run_sweep

WINDOW_SIZES = (10.0, 20.0, 30.0, 40.0)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig5b_throughput_vs_window")
    runs = []
    for size in WINDOW_SIZES:
        window = WindowConfig(length=size, slide=5.0)
        runs.extend(
            (size, cls(MICRO_QUERY, window, config(0.6)), stream) for cls in SYSTEMS
        )
    return run_sweep(collector, runs)


def long_stream():
    return stream_by_rates(
        {"A": 8000 * SCALE, "B": 2000 * SCALE, "C": 100 * SCALE},
        duration=45,
        seed=22,
    )


def test_fig5b(benchmark):
    stream = long_stream()
    collector = benchmark.pedantic(sweep, args=(stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("throughput",))

    # Throughput is flat in the window size: max/min within 15% per system.
    for cls in SYSTEMS:
        series = [collector.value(cls.name, s, "throughput") for s in WINDOW_SIZES]
        assert max(series) / min(series) < 1.15

    # The cross-system ordering persists at every window size.
    for size in WINDOW_SIZES:
        assert (
            collector.value("flink-streamapprox", size, "throughput")
            > collector.value("spark-streamapprox", size, "throughput")
            > collector.value("spark-sts", size, "throughput")
        )
