"""Service load benchmark: N tenants × M queries through `QueryService`.

Unlike the figure benchmarks (simulated throughput on the cost model),
this one measures the serving layer itself with real wall clocks: four
tenants submit eight queries each — mixed means, grouped sums, and p90
quantiles over a shared stream plus per-tenant synthetic workloads — at a
paced submission rate, and we record per-query **time-to-first-pane**
(submission → first streamed pane) and **time-to-answer** (submission →
final `QueryAnswer`), reporting p50/p99 of each.

Asserted claims:

* the run completes — every admitted query finishes with an answer;
* **zero cross-tenant budget leakage** — after the storm, every tenant's
  ledger satisfies ``sampled <= observed * budget`` (the ratio-accounting
  invariant), and the half-budget tenant's achieved ratio stays at or
  below its budget (settle-up swaps each admitted estimate for the
  smaller measured actual, so refunds land every ratio under its cap);
* **observability under load** — ``metrics_snapshot()`` (the payload
  behind the wire ``metrics`` op) reports the storm faithfully:
  service counters reconcile with the outcome, and every tenant's
  latency histograms saw its completed queries;
* **determinism under load** — each admitted query's answer is bitwise
  identical to running its plan standalone through `execute_plan`;
* (env-gated) ``REPRO_SERVICE_MAX_P99_MS`` bounds the p99 time-to-answer
  in milliseconds — unset by default, since absolute latency is a
  property of the machine; CI's service-smoke job arms it.

Every run writes ``benchmarks/results/BENCH_service.json`` — the serving
companion to ``BENCH_fig4a.json``/``BENCH_fig6a.json`` perf artifacts.
"""

import asyncio
import json
import os
from math import ceil

from repro.runtime import SystemConfig, execute_plan
from repro.service import QueryService, QuerySubmission, TenantScheduler
from repro.workloads.synthetic import stream_by_rates

from conftest import RESULTS_DIR

#: tenant -> budget fraction; dave is deliberately half-budgeted so the
#: storm exercises rejections alongside admissions.
TENANTS = {"alice": 1.0, "bravo": 1.0, "carol": 1.0, "dave": 0.5}
QUERIES_PER_TENANT = 8
#: Paced submission rate (per tenant round, submissions/s).
SUBMIT_RATE = 200.0
#: Global in-flight sample-cost capacity — sized so a handful of queries
#: run concurrently and the rest exercise the fair-share queue.
CAPACITY = 10_000.0

MAX_P99_MS = os.environ.get("REPRO_SERVICE_MAX_P99_MS")


def _percentile(values, p):
    """Nearest-rank percentile (the convention of the paper's §6 tables)."""
    ordered = sorted(values)
    return ordered[min(max(0, ceil(p / 100.0 * len(ordered)) - 1), len(ordered) - 1)]


def _submission(tenant, i):
    """The i-th query of a tenant: cycle mean / grouped-sum / quantile."""
    seed = 100 * (sorted(TENANTS).index(tenant) + 1) + i
    config = SystemConfig(sampling_fraction=0.3, seed=seed)
    if i % 3 == 2:
        return QuerySubmission(
            tenant_id=tenant, source="shared-ticks", config=config,
            kind="quantile", q=0.9, name=f"{tenant}-q{i}-p90",
        )
    if i % 3 == 1:
        return QuerySubmission(
            tenant_id=tenant,
            source={"workload": "gaussian", "rate": 150, "duration": 12,
                    "seed": 7 + i % 2},
            config=config, name=f"{tenant}-q{i}-workload",
        )
    return QuerySubmission(
        tenant_id=tenant, source="shared-ticks", config=config,
        kind="sum" if i % 2 else "mean", name=f"{tenant}-q{i}",
    )


async def _storm():
    service = QueryService(
        scheduler=TenantScheduler(capacity=CAPACITY), max_workers=4
    )
    for tenant, budget in TENANTS.items():
        service.register_tenant(tenant, budget)
    service.hub.register(
        "shared-ticks",
        stream_by_rates({"A": 500, "B": 120, "C": 30}, duration=12, seed=9),
    )
    handles, rejections = [], []
    try:
        for i in range(QUERIES_PER_TENANT):
            for tenant in sorted(TENANTS):  # round-robin, paced
                try:
                    handles.append(await service.submit(_submission(tenant, i)))
                except Exception as exc:  # AdmissionRejected
                    rejections.append((tenant, str(exc)))
                await asyncio.sleep(1.0 / SUBMIT_RATE)
        answers = await asyncio.gather(*(h.result() for h in handles))
        return handles, answers, rejections, service.metrics_snapshot(), \
            service.hub.materializations
    finally:
        await service.close()


def test_service_load_p50_p99():
    handles, answers, rejections, metrics, materializations = asyncio.run(_storm())
    snapshot = metrics["tenants"]

    total = QUERIES_PER_TENANT * len(TENANTS)
    assert len(answers) + len(rejections) == total
    assert len(answers) == len(handles)  # every admitted query answered
    # Only the half-budget tenant is ever rejected, and roughly half the time.
    assert all(t == "dave" for t, _ in rejections)
    assert rejections, "dave's 0.5 budget should reject some submissions"

    # -- zero cross-tenant budget leakage ---------------------------------
    for tenant, ledger in snapshot.items():
        assert ledger["sampled"] <= ledger["observed"] * ledger["budget"] + 1e-6, (
            f"tenant {tenant} leaked budget: {ledger}"
        )
        assert ledger["active_cost"] == 0.0  # everything released
        # Settle-up traded every admitted estimate for its measured actual
        # (refunds, on this workload: actual <= estimate).
        assert ledger["settles"] == ledger["admitted"]
        assert ledger["settled"] <= 0.0
    assert 0 < snapshot["dave"]["ratio"] <= 0.5 + 1e-9
    for tenant in ("alice", "bravo", "carol"):
        assert 0 < snapshot[tenant]["ratio"] <= 1.0 + 1e-9

    # -- the metrics snapshot reports the storm faithfully -----------------
    service_stats = metrics["service"]
    assert service_stats["submitted"] == total
    assert service_stats["admitted"] == len(answers)
    assert service_stats["rejected"] == len(rejections)
    assert service_stats["completed"] == len(answers)
    assert service_stats["failed"] == 0
    assert service_stats["in_flight"] == 0 and service_stats["queue_depth"] == 0
    assert service_stats["time_to_answer"]["count"] == len(answers)
    for tenant in TENANTS:
        per_tenant = snapshot[tenant]
        assert per_tenant["time_to_answer"]["count"] == per_tenant["admitted"]
        assert per_tenant["time_to_first_pane"]["count"] == per_tenant["admitted"]

    # -- shared sources ingested once -------------------------------------
    # shared-ticks + the two distinct gaussian workload specs.
    assert materializations == 3

    # -- determinism under load: bitwise equal to standalone runs ---------
    for handle, answer in zip(handles, answers):
        standalone, _cluster = execute_plan(handle.plan)
        assert answer.report.results == standalone, (
            f"query {handle.query_id} ({handle.plan.name}) diverged from "
            "its standalone execute_plan run"
        )

    # -- latency distribution ---------------------------------------------
    ttfp = [a.time_to_first_pane for a in answers if a.time_to_first_pane is not None]
    tta = [a.time_to_answer for a in answers]
    stats = {
        "completed": len(answers),
        "rejected": len(rejections),
        "time_to_first_pane_ms": {
            "p50": round(_percentile(ttfp, 50) * 1000, 3),
            "p99": round(_percentile(ttfp, 99) * 1000, 3),
        },
        "time_to_answer_ms": {
            "p50": round(_percentile(tta, 50) * 1000, 3),
            "p99": round(_percentile(tta, 99) * 1000, 3),
        },
    }
    print(
        f"\nservice load: {len(TENANTS)} tenants x {QUERIES_PER_TENANT} queries, "
        f"{len(answers)} completed / {len(rejections)} rejected\n"
        f"  time-to-first-pane  p50 {stats['time_to_first_pane_ms']['p50']:.1f} ms"
        f"   p99 {stats['time_to_first_pane_ms']['p99']:.1f} ms\n"
        f"  time-to-answer      p50 {stats['time_to_answer_ms']['p50']:.1f} ms"
        f"   p99 {stats['time_to_answer_ms']['p99']:.1f} ms"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "service_load",
        "workload": {
            "tenants": TENANTS,
            "queries_per_tenant": QUERIES_PER_TENANT,
            "submit_rate_per_s": SUBMIT_RATE,
            "capacity": CAPACITY,
        },
        "machine": {"cpu_count": os.cpu_count()},
        "gates": {
            "max_p99_ms": float(MAX_P99_MS) if MAX_P99_MS is not None else None
        },
        "latency": stats,
        "tenants": snapshot,
    }
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Absolute latency is machine-dependent; the gate arms only where CI
    # knows the hardware.
    if MAX_P99_MS is not None:
        assert stats["time_to_answer_ms"]["p99"] <= float(MAX_P99_MS), (
            f"p99 time-to-answer {stats['time_to_answer_ms']['p99']:.1f} ms "
            f"exceeds gate {MAX_P99_MS} ms"
        )
