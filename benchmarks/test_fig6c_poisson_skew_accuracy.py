"""Figure 6(c): accuracy loss vs sampling fraction on the Poisson skew.

Paper setting (§5.7-II): Poisson sub-streams A ~ Poi(10) (80% of items),
B ~ Poi(1000) (19.99%), C ~ Poi(10⁸) (0.01%).  Sub-stream C is a textbook
long tail — vanishingly rare but carrying enormous values — so Spark-SRS,
which may miss C entirely at low fractions, suffers large accuracy losses
(the paper shows up to ~12%), while the stratified systems stay accurate
at every fraction.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import MICRO_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig6c_poisson_skew_accuracy")
    runs = [
        (fraction, cls(MICRO_QUERY, WINDOW, config(fraction)), stream)
        for fraction in FRACTIONS
        for cls in SYSTEMS
    ]
    return run_sweep(collector, runs)


def test_fig6c(benchmark, poisson_skew_stream):
    collector = benchmark.pedantic(
        sweep, args=(poisson_skew_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("accuracy_loss",))

    loss = lambda system, f: collector.value(system, f, "accuracy_loss")  # noqa: E731

    # The long tail punishes SRS at every fraction; stratified systems win.
    for fraction in FRACTIONS:
        srs = loss("spark-srs", fraction)
        for system in ("spark-streamapprox", "flink-streamapprox", "spark-sts"):
            assert loss(system, fraction) < srs

    # SRS's loss is substantial at low fractions and shrinks with more data.
    assert loss("spark-srs", 0.1) > 0.01
    assert loss("spark-srs", 0.9) < loss("spark-srs", 0.1)

    # StreamApprox keeps the long tail: sub-percent loss at any fraction.
    for fraction in FRACTIONS:
        assert loss("spark-streamapprox", fraction) < 0.01
