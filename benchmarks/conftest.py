"""Shared harness for the figure-reproduction benchmarks.

Every ``test_figNN_*.py`` regenerates one figure of the paper's evaluation:
it sweeps the figure's x-axis, runs the systems the figure compares, prints
the same rows/series the paper reports (also written to
``benchmarks/results/``), and asserts the figure's qualitative claims —
who wins, by roughly what factor, where the crossovers are.

Throughput/latency are *simulated* (items per virtual second on the
`SimulatedCluster` cost model, see DESIGN.md §2); accuracy losses are real
measurements against exact re-execution.  pytest-benchmark wraps each
sweep once (``rounds=1``) — wall time of the harness itself is incidental,
the figures live in the printed tables and ``extra_info``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.records import item_key, item_value
from repro.metrics.collector import ExperimentCollector
from repro.system import StreamQuery, SystemConfig, WindowConfig
from repro.workloads.netflow import flow_bytes, flow_protocol, netflow_stream
from repro.workloads.synthetic import (
    gaussian_skew_substreams,
    poisson_substreams,
    stream_by_rates,
    stream_by_shares,
)
from repro.workloads.taxi import ride_borough, ride_distance, taxi_stream

RESULTS_DIR = Path(__file__).parent / "results"

# Scale knob: REPRO_SCALE=2 doubles stream rates/durations for smoother
# curves at the cost of wall time; default 1 keeps the full suite ≈ minutes.
SCALE = float(os.environ.get("REPRO_SCALE", "1"))

# Canonical projections — identity-matched by the runtime to enable the
# columnar fast path on microbenchmark streams.
KEY = item_key
VAL = item_value

# The §5.1 microbenchmark query: window mean over the synthetic values.
MICRO_QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", name="micro-mean")
# §6.2: total traffic size per protocol per window.
NETFLOW_QUERY = StreamQuery(
    key_fn=flow_protocol, value_fn=flow_bytes, kind="sum",
    group_fn=flow_protocol, name="traffic-per-protocol",
)
# §6.3: average trip distance per borough per window.
TAXI_QUERY = StreamQuery(
    key_fn=ride_borough, value_fn=ride_distance, kind="mean",
    group_fn=ride_borough, name="distance-per-borough",
)

WINDOW = WindowConfig(length=10.0, slide=5.0)  # §6.1 defaults


def config(fraction: float = 0.6, **kwargs) -> SystemConfig:
    return SystemConfig(sampling_fraction=fraction, **kwargs)


@pytest.fixture(scope="session")
def micro_stream():
    """Default microbenchmark stream: Gaussian A/B/C at 8K:2K:100 ratio."""
    return stream_by_rates(
        {"A": 32000 * SCALE, "B": 8000 * SCALE, "C": 400 * SCALE},
        duration=12,
        seed=11,
    )


@pytest.fixture(scope="session")
def gaussian_skew_stream():
    """§5.7-I: shares 80/19/1% of the skew-parameter Gaussians."""
    return stream_by_shares(
        gaussian_skew_substreams(),
        {"A": 0.80, "B": 0.19, "C": 0.01},
        total_rate=40000 * SCALE,
        duration=12,
        seed=12,
    )


@pytest.fixture(scope="session")
def poisson_skew_stream():
    """§5.7-II: shares 80/19.99/0.01% of the Poisson sub-streams."""
    return stream_by_shares(
        poisson_substreams(),
        {"A": 0.80, "B": 0.1999, "C": 0.0001},
        total_rate=50000 * SCALE,
        duration=12,
        seed=13,
    )


@pytest.fixture(scope="session")
def netflow_case_stream():
    return netflow_stream(total_rate=30000 * SCALE, duration=12, seed=14)


@pytest.fixture(scope="session")
def taxi_case_stream():
    return taxi_stream(total_rate=30000 * SCALE, duration=12, seed=15)


def run_sweep(collector: ExperimentCollector, runs) -> ExperimentCollector:
    """Execute (setting, system instance, stream) runs and record them."""
    for setting, system, stream in runs:
        collector.record(setting, system.run(stream))
    return collector


def publish(benchmark, collector: ExperimentCollector, metrics=("throughput",)) -> None:
    """Print + persist the figure tables and attach them to the benchmark."""
    RESULTS_DIR.mkdir(exist_ok=True)
    blocks = [collector.table(metric) for metric in metrics]
    text = "\n\n".join(blocks)
    print("\n" + text)
    out = RESULTS_DIR / f"{collector.name}.txt"
    out.write_text(text + "\n")
    if benchmark is not None:
        for metric in metrics:
            for system in collector.systems():
                for setting, value in collector.series(system, metric):
                    benchmark.extra_info[f"{metric}/{system}/{setting}"] = round(value, 4)
