"""Ablation: adaptivity to shifting sub-stream arrival rates.

The paper's §1 criticism of Spark STS is that it "does not handle the case
where the arrival rate of sub-streams changes over time because it
requires a pre-defined sampling fraction for each stratum", whereas OASRS
"naturally adapts".  The stationary microbenchmarks never test this, so
this ablation does, with a rate-swap stream (A:C go 4000:50 → 50:4000
items/s mid-run) under two STS deployment styles:

* **STS-static** — per-stratum fractions fixed from the first interval's
  rates (the pre-defined-fraction deployment the paper criticises),
* **STS-per-batch** — fractions re-derived every batch (the most
  favourable STS setup; what `repro.system.SparkSTSSystem` does),

against Spark-based StreamApprox's water-filling OASRS.  Expected: OASRS
matches the favourable STS on accuracy at far higher throughput, and the
static STS's realised sample collapses after the swap (its fraction map
was sized for the old rates).
"""

import random

from repro.core.strata import StratumSample, WeightedSample, stratum_weight
from repro.sampling.sts import StratifiedSampler
from repro.system import (
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.system.spark_base import BatchedSystem
from repro.workloads.drift import drifting_stream, rate_swap_schedule

from conftest import KEY, RESULTS_DIR, VAL, config

QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(10.0, 5.0)


class StaticFractionSTS(BatchedSystem):
    """STS with a per-stratum fraction map frozen from the first batch.

    The map apportions the sample budget equally across strata — each
    stratum's fraction is ``(budget / X) / C_i^{first}`` — which is how a
    deployment would emulate OASRS's fixed per-stratum reservoirs with
    Spark's `sampleByKeyExact`.  Because fractions (not sizes) are what
    Spark pre-defines, a stratum whose arrival rate later *grows* keeps
    its old generous fraction and blows through the budget; one that
    shrinks is starved.  This is the §1 limitation verbatim.
    """

    name = "spark-sts-static"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(self.config.seed)
        self._sampler = StratifiedSampler(exact=True, rng=self._rng)
        self._fractions = None

    def _handle_batch(self, ctx, items):
        key_fn = self.query.key_fn
        counts = {}
        for item in items:
            counts[key_fn(item)] = counts.get(key_fn(item), 0) + 1
        if self._fractions is None and items:
            budget = self.config.sampling_fraction * len(items)
            per_stratum = budget / max(1, len(counts))
            self._fractions = {
                key: min(1.0, per_stratum / count) for key, count in counts.items()
            }

        rdd = ctx.rdd_of(items)
        sampled = rdd.sample_by_key(
            self._fractions if self._fractions is not None else 0.0,
            key_fn=key_fn, exact=True, rng=self._rng,
        )
        kept = sampled.collect()
        ctx.cluster.process_items(len(kept))

        kept_by_key = {}
        for item in kept:
            kept_by_key.setdefault(key_fn(item), []).append(item)
        sample = WeightedSample()
        for key, count in counts.items():
            members = tuple(kept_by_key.get(key, ()))
            if members:
                sample.add(
                    StratumSample(key, members, count, stratum_weight(count, len(members)))
                )
        return sample


def sweep():
    stream = drifting_stream(rate_swap_schedule(4000, 50, 20.0), seed=61)
    cfg = config(0.3)
    systems = {
        "oasrs (StreamApprox)": SparkStreamApproxSystem(QUERY, WINDOW, cfg),
        "sts per-batch": SparkSTSSystem(QUERY, WINDOW, cfg),
        "sts static fractions": StaticFractionSTS(QUERY, WINDOW, cfg),
    }
    return stream, {name: system.run(stream) for name, system in systems.items()}


def test_ablation_drift(benchmark):
    stream, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ablation_drift — rate swap A:C = 4000:50 → 50:4000 at t=20 s"]
    for name, report in reports.items():
        # Achieved sampling fraction after the swap (last full pane).
        late = report.results[-1]
        achieved = late.sampled_items / late.total_items if late.total_items else 0.0
        lines.append(
            f"{name:22s} loss={report.mean_accuracy_loss():.4%}  "
            f"thr={report.throughput:,.0f}/s  post-swap fraction={achieved:.2f}"
        )
        benchmark.extra_info[f"loss/{name}"] = round(report.mean_accuracy_loss(), 6)

    oasrs = reports["oasrs (StreamApprox)"]
    sts_dynamic = reports["sts per-batch"]
    sts_static = reports["sts static fractions"]

    # OASRS stays accurate through the swap and far out-throughputs STS.
    assert oasrs.mean_accuracy_loss() < 0.01
    assert oasrs.throughput > 1.3 * sts_dynamic.throughput

    # The pre-defined-fraction STS deployment degrades after the swap: its
    # post-swap realised fraction drifts away from the 30% target, while
    # OASRS's water-filling stays near it.
    def post_swap_fraction(report):
        late = report.results[-1]
        return late.sampled_items / late.total_items

    target = 0.3
    assert abs(post_swap_fraction(oasrs) - target) < 0.12
    assert abs(post_swap_fraction(sts_static) - target) > abs(
        post_swap_fraction(oasrs) - target
    )

    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_drift.txt").write_text(text + "\n")
