"""Figure 10: dataset-processing latency, both case studies (60% fraction).

Paper result: Spark-based StreamApprox processes the network-traffic
dataset with 1.39× / 1.69× lower latency than Spark-SRS / Spark-STS, and
the taxi dataset with 1.52× / 2.18× lower latency.  Latency here is the
total time to process the replayed dataset (§6.1).
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import SparkSRSSystem, SparkSTSSystem, SparkStreamApproxSystem

from conftest import NETFLOW_QUERY, TAXI_QUERY, WINDOW, config, publish, run_sweep

SYSTEMS = (SparkSTSSystem, SparkSRSSystem, SparkStreamApproxSystem)


def sweep(netflow_stream_data, taxi_stream_data):
    collector = ExperimentCollector("fig10_latency")
    runs = []
    for cls in SYSTEMS:
        runs.append(
            ("network-traffic", cls(NETFLOW_QUERY, WINDOW, config(0.6)), netflow_stream_data)
        )
        runs.append(("nyc-taxi", cls(TAXI_QUERY, WINDOW, config(0.6)), taxi_stream_data))
    return run_sweep(collector, runs)


def test_fig10(benchmark, netflow_case_stream, taxi_case_stream):
    collector = benchmark.pedantic(
        sweep, args=(netflow_case_stream, taxi_case_stream), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("latency",))

    lat = lambda system, dataset: collector.value(system, dataset, "latency")  # noqa: E731

    for dataset in ("network-traffic", "nyc-taxi"):
        sa = lat("spark-streamapprox", dataset)
        srs = lat("spark-srs", dataset)
        sts = lat("spark-sts", dataset)
        # StreamApprox has the lowest latency; STS the highest.
        assert sa < srs < sts
        # The STS gap is substantial (paper: 1.69× and 2.18×).
        assert sts / sa > 1.4
