"""Figure 7(a–c): per-pane mean estimates vs ground truth over 10 minutes.

Paper setting (§5.7-I): the 80/19/1% skewed Gaussian stream, window
w = 10 s sliding by δ = 5 s, observing the estimated window mean every
5 seconds for 10 minutes.  Spark-SRS's series visibly wanders around the
ground truth (it keeps missing/re-finding the rare high-valued sub-stream
C), while Spark-STS and StreamApprox hug the truth.

The bench writes all three series (plus the truth) to
``benchmarks/results/fig7_mean_timeseries.txt`` and asserts that the
root-mean-square relative deviation of SRS exceeds both stratified systems.
"""

from repro.metrics.accuracy import timeseries_deviation
from repro.metrics.collector import ExperimentCollector
from repro.system import SparkSRSSystem, SparkSTSSystem, SparkStreamApproxSystem
from repro.workloads.synthetic import gaussian_skew_substreams, stream_by_shares

from conftest import MICRO_QUERY, RESULTS_DIR, SCALE, WINDOW, config, publish

OBSERVATION_SECONDS = 600  # the paper's 10-minute observation
SYSTEMS = (SparkSRSSystem, SparkSTSSystem, SparkStreamApproxSystem)


def make_stream():
    return stream_by_shares(
        gaussian_skew_substreams(),
        {"A": 0.80, "B": 0.19, "C": 0.01},
        total_rate=2000 * SCALE,
        duration=OBSERVATION_SECONDS,
        seed=31,
    )


def run_all(stream):
    # A modest fraction so SRS's misses of sub-stream C are visible.
    return {
        cls.name: cls(MICRO_QUERY, WINDOW, config(0.3)).run(stream) for cls in SYSTEMS
    }


def test_fig7(benchmark):
    stream = make_stream()
    reports = benchmark.pedantic(run_all, args=(stream,), rounds=1, iterations=1)

    collector = ExperimentCollector("fig7_mean_timeseries")
    for report in reports.values():
        collector.record("10min", report)
    publish(benchmark, collector, metrics=("accuracy_loss",))

    # Persist the full time series for plotting.
    lines = ["pane_end  exact  " + "  ".join(r for r in reports)]
    reference = reports["spark-streamapprox"].results
    series = {name: dict(rep.mean_estimates()) for name, rep in reports.items()}
    for pane in reference:
        row = [f"{pane.end:8.1f}", f"{pane.exact:10.2f}"]
        row.extend(f"{series[name].get(pane.end, float('nan')):10.2f}" for name in reports)
        lines.append("  ".join(row))
    (RESULTS_DIR / "fig7_series.txt").write_text("\n".join(lines) + "\n")

    # ≈ 120 panes over 10 minutes (one every 5 s).
    assert len(reference) >= 110

    # SRS wanders the most; the stratified systems track the ground truth.
    deviations = {name: timeseries_deviation(rep) for name, rep in reports.items()}
    assert deviations["spark-srs"] > deviations["spark-streamapprox"]
    assert deviations["spark-srs"] > deviations["spark-sts"]

    # StreamApprox's series stays within ±2% of the truth in every pane.
    for pane in reference:
        assert abs(pane.estimate - pane.exact) / pane.exact < 0.02

    for name, dev in deviations.items():
        benchmark.extra_info[f"rms_rel_deviation/{name}"] = round(dev, 5)
