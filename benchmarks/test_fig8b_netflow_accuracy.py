"""Figure 8(b): network-traffic case study — accuracy vs sampling fraction.

Paper findings: accuracy improves (non-linearly) with the sampling
fraction for all systems; StreamApprox is more accurate than Spark-SRS
and close to Spark-STS, at a fraction of STS's cost.  The per-group metric
is the paper's |approx − exact| / exact on the per-protocol traffic totals.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import NETFLOW_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig8b_netflow_accuracy")
    runs = [
        (fraction, cls(NETFLOW_QUERY, WINDOW, config(fraction)), stream)
        for fraction in FRACTIONS
        for cls in SYSTEMS
    ]
    return run_sweep(collector, runs)


def test_fig8b(benchmark, netflow_case_stream):
    collector = benchmark.pedantic(
        sweep, args=(netflow_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("accuracy_loss",))

    loss = lambda system, f: collector.value(system, f, "accuracy_loss")  # noqa: E731

    # Accuracy improves with the fraction for every system.
    for cls in SYSTEMS:
        assert loss(cls.name, 0.9) < loss(cls.name, 0.1)

    # StreamApprox beats SRS on average across the sweep (stratification
    # pays off on the heavy-tailed, protocol-skewed traffic); at very high
    # fractions the two converge, as in the paper.
    sa_mean = sum(loss("spark-streamapprox", f) for f in FRACTIONS) / len(FRACTIONS)
    srs_mean = sum(loss("spark-srs", f) for f in FRACTIONS) / len(FRACTIONS)
    assert sa_mean < srs_mean

    # Losses are small in absolute terms at the 60% operating point.
    assert loss("spark-streamapprox", 0.6) < 0.02
    assert loss("spark-sts", 0.6) < 0.02
