"""Figure 4(c): throughput vs batch interval (Spark systems, 60% fraction).

Paper series at 1000 / 500 / 250 ms batch intervals: the throughput gap
between Spark-based StreamApprox and the two Spark baselines *widens* as
the interval shrinks, because StreamApprox samples before forming RDDs and
so pays less per-batch scheduling/processing overhead — at 250 ms the
paper reports 1.36× over SRS and 2.33× over STS, versus 1.07× and 1.63×
at 1000 ms.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import SparkSRSSystem, SparkSTSSystem, SparkStreamApproxSystem

from conftest import MICRO_QUERY, WINDOW, config, publish, run_sweep

INTERVALS = (0.25, 0.5, 1.0)
SYSTEMS = (SparkStreamApproxSystem, SparkSRSSystem, SparkSTSSystem)


def sweep(stream):
    collector = ExperimentCollector("fig4c_throughput_vs_batch_interval")
    runs = [
        (
            interval,
            cls(MICRO_QUERY, WINDOW, config(0.6, batch_interval=interval)),
            stream,
        )
        for interval in INTERVALS
        for cls in SYSTEMS
    ]
    return run_sweep(collector, runs)


def test_fig4c(benchmark, micro_stream):
    collector = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("throughput",))

    def ratio(other, interval):
        return collector.ratio("spark-streamapprox", other, interval, "throughput")

    # StreamApprox leads both baselines at every interval...
    for interval in INTERVALS:
        assert ratio("spark-srs", interval) > 1.0
        assert ratio("spark-sts", interval) > 1.3

    # ...and the lead over STS widens as the interval shrinks (the paper's
    # 1.63× → 2.33× trend).
    assert ratio("spark-sts", 0.25) > ratio("spark-sts", 1.0)
