"""Ablation: per-stratum reservoir allocation policies.

DESIGN.md calls out the reservoir-size policy as a load-bearing choice in
OASRS.  This bench compares, on the skewed Gaussian stream, three ways to
spend the same total sample budget:

* **water-filling** (the system default): keep small strata whole, cap the
  large ones equally — rare-but-significant sub-streams never lost,
* **equal split**: the literal ``getSampleSize(sampleSize, S)`` of
  Algorithm 3 — simple, but wastes budget on strata smaller than their
  allocation,
* **proportional**: allocate like STS would — follows popularity, so the
  rare stratum gets almost nothing.

Expectation: on the mean query dominated by the rare stratum C,
water-filling ≥ equal ≫ proportional in accuracy at the same budget.
"""

import random

from repro.core.oasrs import (
    EqualAllocation,
    OASRSSampler,
    ProportionalAllocation,
    WaterFillingAllocation,
)
from repro.core.query import approximate_mean
from repro.system.base import accuracy_loss

from conftest import KEY, RESULTS_DIR, VAL

BUDGET = 3000
INTERVALS = 12


def run_policy(policy_factory, stream_intervals, seed=5):
    sampler = OASRSSampler(policy_factory(), key_fn=KEY, rng=random.Random(seed))
    losses = []
    for interval_items in stream_intervals:
        sampler.offer_many(interval_items)
        sample = sampler.close_interval()
        estimate = approximate_mean(sample, VAL).value
        values = [VAL(item) for item in interval_items]
        exact = sum(values) / len(values)
        losses.append(accuracy_loss(estimate, exact))
    return sum(losses) / len(losses)


def make_intervals(seed=41):
    """INTERVALS intervals of the 80/19/1 skewed Gaussian mix."""
    rng = random.Random(seed)
    intervals = []
    for _ in range(INTERVALS):
        items = (
            [("A", rng.gauss(100, 10)) for _ in range(8000)]
            + [("B", rng.gauss(1000, 100)) for _ in range(1900)]
            + [("C", rng.gauss(10000, 1000)) for _ in range(100)]
        )
        rng.shuffle(items)
        intervals.append(items)
    return intervals


def sweep():
    intervals = make_intervals()
    return {
        "water-filling": run_policy(lambda: WaterFillingAllocation(BUDGET, 3), intervals),
        "equal-split": run_policy(lambda: EqualAllocation(BUDGET), intervals),
        "proportional": run_policy(lambda: ProportionalAllocation(BUDGET), intervals),
    }


def test_ablation_reservoir_policy(benchmark):
    losses = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ablation_reservoir_policy — mean accuracy loss at equal budget"]
    for policy, loss in losses.items():
        lines.append(f"{policy:16s} {loss:.6f}")
        benchmark.extra_info[f"loss/{policy}"] = round(loss, 6)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_reservoir_policy.txt").write_text(text + "\n")

    # Keeping the rare stratum whole is what buys accuracy on this query:
    # both stratification-preserving policies beat proportional clearly.
    assert losses["water-filling"] < losses["proportional"]
    assert losses["equal-split"] < losses["proportional"]
    # Water-filling never does worse than the naive equal split.
    assert losses["water-filling"] <= losses["equal-split"] * 1.5
