"""Figure 6(a) companion: real wall-clock scalability of the chunk/shard path.

Every other figure reports *simulated* throughput on the cost model; this
benchmark measures the repo's own execution speed.  It runs
`NativeStreamApproxSystem` — OASRS directly over the fig6a microbenchmark
workload at the figure's 40% sampling fraction — in three modes:

* ``item`` — the legacy item-at-a-time hot loop (one ``offer`` per item),
* ``chunk=K`` — the vectorized chunk path (`OASRSSampler.process_chunk`
  with batched RNG draws and pooled interval moments),
* ``shard=4`` — the real multi-process `ShardedExecutor` (4 workers).

Two wall-clock throughputs are reported per mode: ``end-to-end`` (the
whole `timed_execute` processing path) and ``sampling path`` (only the
offer/process_chunk section — the code the chunk API replaces, and the
stable basis for the speedup assertion; the end-to-end ratio adds shared
slicing/estimation time to both sides and is noisier run to run).
Asserted claims: every chunked setting beats item-at-a-time end to end;
large chunks (>= 1024) beat the item-at-a-time sampling path by >= 2x; and
4-way sharding keeps accuracy within the same error bounds as the
single-process run.

Note on sharding: the sharded mode runs over the persistent worker pool
(processes spawned once per run, chunks moved via shared memory), so its
throughput is now a genuine multi-core measurement — but the *win* still
depends on cores actually being available.  On a single-core box the
shards time-slice one CPU and cannot beat the in-process chunk path, so
the shard-speedup gate only arms when ``REPRO_FIG6A_MIN_SHARD_SPEEDUP``
is set (CI sets it on multi-core runners); the accuracy claim is always
asserted.  Every run also writes ``benchmarks/results/BENCH_fig6a.json``,
a machine-readable perf-trajectory artifact.
"""

import json
import os

from repro.system import NativeStreamApproxSystem, SystemConfig

from conftest import MICRO_QUERY, RESULTS_DIR, WINDOW

FRACTION = 0.4  # the fig6a operating point
CHUNKS = (64, 256, 1024, 4096)
REPEATS = 3  # best-of, to shrug off scheduler noise
# Required sampling-path speedup at chunk >= 1024.  The checked-in margin is
# well above 2x on an idle box; shared CI runners are throttled and noisy, so
# CI relaxes the gate via this env var rather than flaking unrelated PRs.
MIN_SPEEDUP = float(os.environ.get("REPRO_FIG6A_MIN_SPEEDUP", "2.0"))
# Required end-to-end speedup of shard=4 over the best single-process chunked
# row.  Unset by default: parallel speedup is a property of the machine (a
# 1-core box physically cannot deliver it), so the gate arms only where the
# cores exist — CI's shard-scaling job sets e.g. "1.0".
MIN_SHARD_SPEEDUP = os.environ.get("REPRO_FIG6A_MIN_SHARD_SPEEDUP")


def _throughput(stream, chunk_size=0, parallelism=1):
    """Best-of-REPEATS (end-to-end, sampling-path) items/s for one mode."""
    best_total = 0.0
    best_sampling = 0.0
    for _ in range(REPEATS):
        config = SystemConfig(
            sampling_fraction=FRACTION,
            seed=21,
            chunk_size=chunk_size,
            parallelism=parallelism,
        )
        system = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, config)
        _results, _cluster, wall = system.timed_execute(stream)
        fallback = system._run_info.get("parallel_fallback")
        assert fallback is None, (
            f"parallelism={parallelism} silently degraded: {fallback}"
        )
        # The microbenchmark stream is a RecordBatch with the canonical
        # projections — the columnar path must actually engage, not shim.
        assert system._run_info.get("columnar_fallback") is None, (
            f"columnar path silently degraded: "
            f"{system._run_info.get('columnar_fallback')}"
        )
        best_total = max(best_total, len(stream) / wall)
        best_sampling = max(best_sampling, len(stream) / system.last_sampling_seconds)
    return best_total, best_sampling


def sweep(stream):
    rows = {}
    rows["item-at-a-time"] = _throughput(stream)
    for chunk in CHUNKS:
        rows[f"chunk={chunk}"] = _throughput(stream, chunk_size=chunk)
    rows["shard=4"] = _throughput(stream, chunk_size=4096, parallelism=4)
    return rows


def test_fig6a_chunked(benchmark, micro_stream):
    rows = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)

    base_total, base_sampling = rows["item-at-a-time"]
    lines = ["fig6a_chunked_scalability — wall-clock throughput (items/s)"]
    lines.append(
        f"{'setting':<16}{'end-to-end':>14}{'speedup':>9}"
        f"{'sampling path':>16}{'speedup':>9}"
    )
    for setting, (total, sampling) in rows.items():
        lines.append(
            f"{setting:<16}{total:>14,.0f}{total / base_total:>8.2f}x"
            f"{sampling:>16,.0f}{sampling / base_sampling:>8.2f}x"
        )
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig6a_chunked_scalability.txt").write_text(text + "\n")
    _write_bench_json(rows, base_total, base_sampling)
    for setting, (total, sampling) in rows.items():
        benchmark.extra_info[f"wall_throughput/{setting}"] = round(total, 1)
        benchmark.extra_info[f"sampling_throughput/{setting}"] = round(sampling, 1)

    # Every chunked setting beats the per-item path end to end...
    for chunk in CHUNKS:
        assert rows[f"chunk={chunk}"][0] > base_total
    # ...and large chunks beat the item-at-a-time sampling path >= MIN_SPEEDUP.
    for chunk in (1024, 4096):
        assert rows[f"chunk={chunk}"][1] >= MIN_SPEEDUP * base_sampling
    # Growing the chunk from 1024 to 4096 must not fall off a cache cliff:
    # L2-sized sub-slicing keeps the working set bounded, so throughput is
    # monotone-or-flat (10% tolerance for scheduler noise).
    assert rows["chunk=4096"][0] >= 0.9 * rows["chunk=1024"][0], (
        f"chunk=4096 ({rows['chunk=4096'][0]:,.0f} it/s) regressed below "
        f"chunk=1024 ({rows['chunk=1024'][0]:,.0f} it/s): cache spill"
    )
    # With enough cores (gate armed by env), the persistent pool turns
    # parallelism into real end-to-end throughput: shard=4 beats the best
    # single-process chunked row.
    if MIN_SHARD_SPEEDUP is not None:
        best_chunked = max(rows[f"chunk={c}"][0] for c in CHUNKS)
        assert rows["shard=4"][0] >= float(MIN_SHARD_SPEEDUP) * best_chunked, (
            f"shard=4 end-to-end {rows['shard=4'][0]:,.0f} it/s below "
            f"{MIN_SHARD_SPEEDUP}x the best chunked row {best_chunked:,.0f} it/s"
        )


def _write_bench_json(rows, base_total, base_sampling):
    """Persist the sweep as a perf-trajectory artifact (BENCH_fig6a.json)."""
    payload = {
        "benchmark": "fig6a_chunked_scalability",
        "workload": {"fraction": FRACTION, "repeats": REPEATS},
        "machine": {"cpu_count": os.cpu_count()},
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_shard_speedup": (
                float(MIN_SHARD_SPEEDUP) if MIN_SHARD_SPEEDUP is not None else None
            ),
        },
        "rows": [
            {
                "setting": setting,
                "end_to_end_items_per_s": round(total, 1),
                "end_to_end_speedup": round(total / base_total, 3),
                "sampling_items_per_s": round(sampling, 1),
                "sampling_speedup": round(sampling / base_sampling, 3),
            }
            for setting, (total, sampling) in rows.items()
        ],
    }
    (RESULTS_DIR / "BENCH_fig6a.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def test_fig6a_sharded_accuracy(micro_stream):
    """4 real worker processes stay within single-process error bounds."""
    single_cfg = SystemConfig(sampling_fraction=FRACTION, seed=21, chunk_size=1024)
    sharded_cfg = SystemConfig(
        sampling_fraction=FRACTION, seed=21, chunk_size=1024, parallelism=4
    )
    single = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, single_cfg).run(micro_stream)
    sharded = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, sharded_cfg).run(micro_stream)

    assert [r.end for r in single.results] == [r.end for r in sharded.results]
    # Absolute bar: the sharded estimates are accurate...
    assert sharded.mean_accuracy_loss() < 0.01
    # ...each pane's rigorous ±bound covers the exact answer...
    for pane in sharded.results:
        assert abs(pane.estimate - pane.exact) <= pane.error.margin
    # ...and sharding does not degrade accuracy beyond run-to-run noise.
    assert sharded.mean_accuracy_loss() <= max(
        2.5 * single.mean_accuracy_loss(), 0.005
    )
