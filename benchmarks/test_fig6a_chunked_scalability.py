"""Figure 6(a) companion: real wall-clock scalability of the chunk/shard path.

Every other figure reports *simulated* throughput on the cost model; this
benchmark measures the repo's own execution speed.  It runs
`NativeStreamApproxSystem` — OASRS directly over the fig6a microbenchmark
workload at the figure's 40% sampling fraction — in three modes:

* ``item`` — the legacy item-at-a-time hot loop (one ``offer`` per item),
* ``chunk=K`` — the vectorized chunk path (`OASRSSampler.process_chunk`
  with batched RNG draws and pooled interval moments),
* ``shard=4`` — the real multi-process `ShardedExecutor` (4 workers).

Two wall-clock throughputs are reported per mode: ``end-to-end`` (the
whole `timed_execute` processing path) and ``sampling path`` (only the
offer/process_chunk section — the code the chunk API replaces, and the
stable basis for the speedup assertion; the end-to-end ratio adds shared
slicing/estimation time to both sides and is noisier run to run).
Asserted claims: every chunked setting beats item-at-a-time end to end;
large chunks (>= 1024) beat the item-at-a-time sampling path by >= 2x; and
4-way sharding keeps accuracy within the same error bounds as the
single-process run.

Note on sharding: with real processes the win depends on available cores —
on a single-core CI box the fork+pickle overhead dominates, so only the
accuracy claim is asserted for the sharded mode, not a speedup.
"""

import os

from repro.system import NativeStreamApproxSystem, SystemConfig

from conftest import MICRO_QUERY, RESULTS_DIR, WINDOW

FRACTION = 0.4  # the fig6a operating point
CHUNKS = (64, 256, 1024, 4096)
REPEATS = 3  # best-of, to shrug off scheduler noise
# Required sampling-path speedup at chunk >= 1024.  The checked-in margin is
# well above 2x on an idle box; shared CI runners are throttled and noisy, so
# CI relaxes the gate via this env var rather than flaking unrelated PRs.
MIN_SPEEDUP = float(os.environ.get("REPRO_FIG6A_MIN_SPEEDUP", "2.0"))


def _throughput(stream, chunk_size=0, parallelism=1):
    """Best-of-REPEATS (end-to-end, sampling-path) items/s for one mode."""
    best_total = 0.0
    best_sampling = 0.0
    for _ in range(REPEATS):
        config = SystemConfig(
            sampling_fraction=FRACTION,
            seed=21,
            chunk_size=chunk_size,
            parallelism=parallelism,
        )
        system = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, config)
        _results, _cluster, wall = system.timed_execute(stream)
        best_total = max(best_total, len(stream) / wall)
        best_sampling = max(best_sampling, len(stream) / system.last_sampling_seconds)
    return best_total, best_sampling


def sweep(stream):
    rows = {}
    rows["item-at-a-time"] = _throughput(stream)
    for chunk in CHUNKS:
        rows[f"chunk={chunk}"] = _throughput(stream, chunk_size=chunk)
    rows["shard=4"] = _throughput(stream, chunk_size=4096, parallelism=4)
    return rows


def test_fig6a_chunked(benchmark, micro_stream):
    rows = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)

    base_total, base_sampling = rows["item-at-a-time"]
    lines = ["fig6a_chunked_scalability — wall-clock throughput (items/s)"]
    lines.append(
        f"{'setting':<16}{'end-to-end':>14}{'speedup':>9}"
        f"{'sampling path':>16}{'speedup':>9}"
    )
    for setting, (total, sampling) in rows.items():
        lines.append(
            f"{setting:<16}{total:>14,.0f}{total / base_total:>8.2f}x"
            f"{sampling:>16,.0f}{sampling / base_sampling:>8.2f}x"
        )
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig6a_chunked_scalability.txt").write_text(text + "\n")
    for setting, (total, sampling) in rows.items():
        benchmark.extra_info[f"wall_throughput/{setting}"] = round(total, 1)
        benchmark.extra_info[f"sampling_throughput/{setting}"] = round(sampling, 1)

    # Every chunked setting beats the per-item path end to end...
    for chunk in CHUNKS:
        assert rows[f"chunk={chunk}"][0] > base_total
    # ...and large chunks beat the item-at-a-time sampling path >= MIN_SPEEDUP.
    for chunk in (1024, 4096):
        assert rows[f"chunk={chunk}"][1] >= MIN_SPEEDUP * base_sampling


def test_fig6a_sharded_accuracy(micro_stream):
    """4 real worker processes stay within single-process error bounds."""
    single_cfg = SystemConfig(sampling_fraction=FRACTION, seed=21, chunk_size=1024)
    sharded_cfg = SystemConfig(
        sampling_fraction=FRACTION, seed=21, chunk_size=1024, parallelism=4
    )
    single = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, single_cfg).run(micro_stream)
    sharded = NativeStreamApproxSystem(MICRO_QUERY, WINDOW, sharded_cfg).run(micro_stream)

    assert [r.end for r in single.results] == [r.end for r in sharded.results]
    # Absolute bar: the sharded estimates are accurate...
    assert sharded.mean_accuracy_loss() < 0.01
    # ...each pane's rigorous ±bound covers the exact answer...
    for pane in sharded.results:
        assert abs(pane.estimate - pane.exact) <= pane.error.margin
    # ...and sharding does not degrade accuracy beyond run-to-run noise.
    assert sharded.mean_accuracy_loss() <= max(
        2.5 * single.mean_accuracy_loss(), 0.005
    )
