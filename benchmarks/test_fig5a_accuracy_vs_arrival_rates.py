"""Figure 5(a): accuracy loss with varying sub-stream arrival rates.

Paper setting: Gaussian sub-streams A/B/C with arrival-rate mixes
8K:2K:100, 3K:3K:3K and 100:2K:8K items/s at a 60% sampling fraction.
Sub-stream C carries the most significant values (µ = 10000), so when C is
rare (8K:2K:100) Spark-SRS fares worst — it can overlook C — while the
stratified systems stay accurate.  When C dominates (100:2K:8K), all four
systems converge to nearly the same accuracy.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)
from repro.workloads.synthetic import stream_by_rates

from conftest import MICRO_QUERY, SCALE, WINDOW, config, publish, run_sweep

RATE_MIXES = {
    "8K:2K:100": {"A": 8000, "B": 2000, "C": 100},
    "3K:3K:3K": {"A": 3000, "B": 3000, "C": 3000},
    "100:2K:8K": {"A": 100, "B": 2000, "C": 8000},
}
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep():
    collector = ExperimentCollector("fig5a_accuracy_vs_arrival_rates")
    for label, rates in RATE_MIXES.items():
        scaled = {k: v * SCALE for k, v in rates.items()}
        stream = stream_by_rates(scaled, duration=12, seed=21)
        run_sweep(
            collector,
            [(label, cls(MICRO_QUERY, WINDOW, config(0.6)), stream) for cls in SYSTEMS],
        )
    return collector


def test_fig5a(benchmark):
    collector = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("accuracy_loss",))

    loss = lambda system, mix: collector.value(system, mix, "accuracy_loss")  # noqa: E731

    # C rare → SRS is the least accurate of the four systems.
    rare = "8K:2K:100"
    assert loss("spark-srs", rare) == max(loss(s.name, rare) for s in SYSTEMS)

    # C abundant → everyone is accurate and close together (≤ 0.2% loss).
    abundant = "100:2K:8K"
    for cls in SYSTEMS:
        assert loss(cls.name, abundant) < 0.002

    # SRS improves monotonically as C's arrival rate grows.
    assert loss("spark-srs", rare) > loss("spark-srs", abundant)
