"""Ablation: distributed OASRS — w local reservoirs of N/w vs one of N.

§3.2 claims OASRS parallelises without synchronization: each worker keeps a
local reservoir of capacity N/w plus a local counter, and the coordinator
merge is a concatenation + counter sum.  This bench verifies the two
halves of that claim:

* **statistics**: the merged estimate's accuracy is indistinguishable from
  a single global reservoir of size N, for any worker count, and
* **cost**: the distributed path crosses zero synchronization barriers,
  in contrast to an STS-style groupBy at the same sample size.
"""

import random
import statistics

from repro.core.distributed import DistributedOASRS
from repro.core.oasrs import FixedPerStratum, oasrs_sample
from repro.core.query import approximate_sum
from repro.engine.batched.rdd import MiniRDD
from repro.engine.cluster import SimulatedCluster
from repro.system.base import accuracy_loss

from conftest import KEY, RESULTS_DIR, VAL

WORKER_COUNTS = (1, 2, 4, 8)
CAPACITY = 240  # divisible by every worker count
TRIALS = 40


def make_stream(seed=51):
    rng = random.Random(seed)
    items = [("A", rng.gauss(100, 10)) for _ in range(20_000)] + [
        ("B", rng.gauss(5000, 500)) for _ in range(2_000)
    ]
    rng.shuffle(items)
    return items


def mean_loss_distributed(stream, workers, truth):
    losses = []
    for seed in range(TRIALS):
        d = DistributedOASRS(
            workers, FixedPerStratum(CAPACITY), key_fn=KEY, rng=random.Random(seed)
        )
        d.offer_many(stream)
        est = approximate_sum(d.close_interval(), VAL).value
        losses.append(accuracy_loss(est, truth))
    return statistics.fmean(losses)


def sweep():
    stream = make_stream()
    truth = sum(VAL(item) for item in stream)
    single = statistics.fmean(
        accuracy_loss(
            approximate_sum(
                oasrs_sample(stream, CAPACITY, key_fn=KEY, rng=random.Random(seed)), VAL
            ).value,
            truth,
        )
        for seed in range(TRIALS)
    )
    distributed = {w: mean_loss_distributed(stream, w, truth) for w in WORKER_COUNTS}
    return single, distributed, stream


def test_ablation_distributed(benchmark):
    single, distributed, stream = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "ablation_distributed — mean relative error of the SUM estimate",
        f"single global reservoir (N={CAPACITY})      loss={single:.5f}",
    ]
    for workers, loss in distributed.items():
        lines.append(f"{workers} workers × N/{workers} local reservoirs   loss={loss:.5f}")
        benchmark.extra_info[f"loss/workers={workers}"] = round(loss, 6)
        # Statistically indistinguishable from the single reservoir: same
        # order of magnitude, no systematic blow-up with worker count.
        assert loss < max(3.0 * single, 0.02)

    # Zero synchronization on the distributed-OASRS path...
    cluster = SimulatedCluster()
    cluster.sample_items(len(stream), "oasrs")
    assert cluster.stats.barriers == 0

    # ...whereas an STS-style groupBy at the same budget must synchronise.
    sts_cluster = SimulatedCluster()
    rdd = MiniRDD.parallelize(sts_cluster, stream)
    rdd.sample_by_key(CAPACITY * 2 / len(stream), rng=random.Random(0)).collect()
    assert sts_cluster.stats.barriers > 0
    lines.append(
        f"barriers: distributed OASRS = 0, STS groupBy = {sts_cluster.stats.barriers}"
    )

    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_distributed.txt").write_text(text + "\n")
