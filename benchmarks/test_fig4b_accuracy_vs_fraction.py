"""Figure 4(b): accuracy loss vs sampling fraction (Gaussian microbenchmark).

Paper series: accuracy improves with the sampling fraction for every
system; the stratified systems (both StreamApprox flavours and Spark-STS)
sit well below Spark-SRS, which cannot guarantee the rare-but-significant
sub-stream C is represented.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import MICRO_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig4b_accuracy_vs_fraction")
    runs = [
        (fraction, cls(MICRO_QUERY, WINDOW, config(fraction)), stream)
        for fraction in FRACTIONS
        for cls in SYSTEMS
    ]
    return run_sweep(collector, runs)


def test_fig4b(benchmark, micro_stream):
    collector = benchmark.pedantic(sweep, args=(micro_stream,), rounds=1, iterations=1)
    publish(benchmark, collector, metrics=("accuracy_loss",))

    loss = lambda system, f: collector.value(system, f, "accuracy_loss")  # noqa: E731

    # Stratification wins: both StreamApprox flavours and STS beat SRS at
    # every fraction (the paper's central accuracy claim).
    for fraction in FRACTIONS:
        srs = loss("spark-srs", fraction)
        for system in ("spark-streamapprox", "flink-streamapprox", "spark-sts"):
            assert loss(system, fraction) < srs

    # Accuracy improves as the fraction grows (compare the sweep's ends).
    for system in ("spark-streamapprox", "spark-srs"):
        assert loss(system, 0.9) < loss(system, 0.1)

    # Magnitudes stay in the paper's band: SRS ≈ 0.6% at 60%, ≤ a few %.
    assert loss("spark-srs", 0.6) < 0.03
    assert loss("spark-streamapprox", 0.6) < 0.005
