"""Budget-driven adaptation: convergence to a target margin under drift.

The paper's user contract (§2.3, §4.2) is a *query budget*, not a sampling
fraction: the user states the accuracy they need and the system adapts its
per-interval sample size to deliver it.  This benchmark runs that loop on
the rate-swap drift workload (A dominates, then C does — the §1 scenario a
pre-defined fraction cannot follow) and asserts the §4.2 controller:

* starting from a deliberately starved seed (2% sampling), the measured CI
  half-width reaches the target within ``REPRO_ADAPT_MAX_INTERVALS``
  intervals and *holds* it through the end of the run, despite the swap
  disrupting the variance structure mid-stream,
* the per-interval sample-budget trajectory is recorded on the report
  (visible, not inferred),
* a fixed-fraction run at the same starved seed never meets the target —
  the adaptation is doing the work, not the workload.

``REPRO_ADAPT_MAX_INTERVALS`` (default 8) loosens the convergence deadline
on throttled CI runners, mirroring ``REPRO_FIG6A_MIN_SPEEDUP``.
"""

import os

from repro.core.budget import AccuracyBudget
from repro.metrics.adaptation import convergence_interval, format_trajectory
from repro.system import NativeStreamApproxSystem, SystemConfig, WindowConfig
from repro.workloads.drift import drifting_stream, rate_swap_schedule

from conftest import KEY, RESULTS_DIR, VAL
from repro.system import StreamQuery

QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", name="drift-mean")
WINDOW = WindowConfig(10.0, 5.0)

TARGET_MARGIN = 0.5
SEED_FRACTION = 0.02  # starved on purpose: the loop has to grow
MAX_INTERVALS = int(os.environ.get("REPRO_ADAPT_MAX_INTERVALS", "8"))


def sweep():
    stream = drifting_stream(rate_swap_schedule(4000, 50, 20.0), seed=61)
    adaptive = NativeStreamApproxSystem(
        QUERY, WINDOW,
        SystemConfig(
            sampling_fraction=SEED_FRACTION,
            budget=AccuracyBudget(target_margin=TARGET_MARGIN),
        ),
    ).run(stream)
    fixed = NativeStreamApproxSystem(
        QUERY, WINDOW, SystemConfig(sampling_fraction=SEED_FRACTION)
    ).run(stream)
    return stream, adaptive, fixed


def test_adaptation_convergence(benchmark):
    stream, adaptive, fixed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    reached = convergence_interval(adaptive, TARGET_MARGIN)
    lines = [
        "adaptation_convergence — AccuracyBudget(target_margin="
        f"{TARGET_MARGIN}) on the rate-swap drift stream "
        f"({len(stream):,} items, swap at t=20 s)",
        "",
        format_trajectory(adaptive, TARGET_MARGIN),
        "",
        f"fixed fraction {SEED_FRACTION:.0%} margins: "
        + ", ".join(f"{r.error.margin:.3g}" for r in fixed.results),
    ]
    benchmark.extra_info["convergence_interval"] = reached
    benchmark.extra_info["budgets"] = [
        p.sample_budget for p in adaptive.adaptation
    ]

    # One control decision per pane — the trajectory is fully visible.
    assert len(adaptive.adaptation) == len(adaptive.results) > 0

    # The §4.2 loop reaches the target and holds it to the end of the run,
    # within the (CI-tunable) interval deadline.
    assert reached is not None, "target margin never held"
    assert reached <= MAX_INTERVALS, (
        f"converged at interval {reached}, deadline {MAX_INTERVALS}"
    )

    # The budget genuinely adapted upward from the starved seed…
    budgets = [p.sample_budget for p in adaptive.adaptation]
    assert max(budgets) > 2 * budgets[0]

    # …and adaptation, not the workload, is what meets the target: the same
    # starved fraction held fixed stays above the target margin throughout.
    assert all(r.error.margin > TARGET_MARGIN for r in fixed.results)

    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "adaptation_convergence.txt").write_text(text + "\n")
