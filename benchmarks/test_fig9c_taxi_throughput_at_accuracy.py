"""Figure 9(c): NYC-taxi case study — throughput at fixed accuracy loss.

Paper result at 1% loss: Flink-based StreamApprox 1.6× over Spark-based
StreamApprox and Spark-SRS, and 3× over Spark-STS.  (The paper's x-axis
marks 0.1% and 0.4%; we tune to both.)
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import TAXI_QUERY, WINDOW, config, publish

TARGETS = (0.001, 0.004)
FRACTIONS = (0.8, 0.6, 0.4, 0.2, 0.1, 0.05)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def tune_and_measure(stream):
    collector = ExperimentCollector("fig9c_taxi_throughput_at_accuracy")
    for target in TARGETS:
        for cls in SYSTEMS:
            chosen = None
            for fraction in FRACTIONS:
                report = cls(TAXI_QUERY, WINDOW, config(fraction)).run(stream)
                if report.mean_accuracy_loss() <= target:
                    chosen = report
                else:
                    break
            if chosen is None:
                chosen = cls(TAXI_QUERY, WINDOW, config(0.9)).run(stream)
            collector.record(f"{target:.1%}", chosen)
    return collector


def test_fig9c(benchmark, taxi_case_stream):
    collector = benchmark.pedantic(
        tune_and_measure, args=(taxi_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("throughput", "accuracy_loss"))

    for target in ("0.1%", "0.4%"):
        thr = {cls.name: collector.value(cls.name, target, "throughput") for cls in SYSTEMS}
        # Both StreamApprox flavours beat both baselines at equal accuracy;
        # STS is clearly last (paper: 3× behind Flink-StreamApprox).
        for approx in ("spark-streamapprox", "flink-streamapprox"):
            assert thr[approx] > thr["spark-srs"]
            assert thr[approx] > thr["spark-sts"]
        assert thr["spark-sts"] == min(thr.values())
        assert thr["flink-streamapprox"] / thr["spark-sts"] > 1.8
