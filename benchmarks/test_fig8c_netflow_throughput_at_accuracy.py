"""Figure 8(c): network-traffic case study — throughput at fixed accuracy.

Paper result at 1% accuracy loss: Spark-based StreamApprox 2.36× over
Spark-STS and 1.05× over Spark-SRS; Flink-based StreamApprox another
1.46× over Spark-based StreamApprox.  Each system is tuned to the target
loss by sweeping the sampling fraction downward.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import NETFLOW_QUERY, WINDOW, config, publish

TARGETS = (0.01, 0.02)
FRACTIONS = (0.8, 0.6, 0.4, 0.2, 0.1, 0.05)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def tune_and_measure(stream):
    collector = ExperimentCollector("fig8c_netflow_throughput_at_accuracy")
    for target in TARGETS:
        for cls in SYSTEMS:
            chosen = None
            for fraction in FRACTIONS:
                report = cls(NETFLOW_QUERY, WINDOW, config(fraction)).run(stream)
                if report.mean_accuracy_loss() <= target:
                    chosen = report
                else:
                    break
            if chosen is None:
                chosen = cls(NETFLOW_QUERY, WINDOW, config(0.9)).run(stream)
            collector.record(f"{target:.0%}", chosen)
    return collector


def test_fig8c(benchmark, netflow_case_stream):
    collector = benchmark.pedantic(
        tune_and_measure, args=(netflow_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("throughput", "accuracy_loss"))

    for target in ("1%", "2%"):
        thr = {cls.name: collector.value(cls.name, target, "throughput") for cls in SYSTEMS}
        # Both StreamApprox flavours beat both Spark baselines at equal
        # accuracy (paper: 2.36× over STS, 1.05× over SRS, Flink on top).
        for approx in ("spark-streamapprox", "flink-streamapprox"):
            assert thr[approx] > thr["spark-srs"]
            assert thr[approx] > thr["spark-sts"]
        assert thr["spark-streamapprox"] / thr["spark-sts"] > 1.4
