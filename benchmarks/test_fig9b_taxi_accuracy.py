"""Figure 9(b): NYC-taxi case study — accuracy vs sampling fraction.

Paper finding: all four systems achieve very similar (sub-percent)
accuracy on this query.  Trip distances within a borough vary far less
than flow sizes, and every borough contributes plenty of rides, so even
SRS rarely misses a stratum — the gap only opens at the smallest
fractions.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import TAXI_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)
SYSTEMS = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig9b_taxi_accuracy")
    runs = [
        (fraction, cls(TAXI_QUERY, WINDOW, config(fraction)), stream)
        for fraction in FRACTIONS
        for cls in SYSTEMS
    ]
    return run_sweep(collector, runs)


def test_fig9b(benchmark, taxi_case_stream):
    collector = benchmark.pedantic(
        sweep, args=(taxi_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("accuracy_loss",))

    loss = lambda system, f: collector.value(system, f, "accuracy_loss")  # noqa: E731

    # All four systems land in the same sub-percent accuracy band at the
    # 60% operating point (the paper's "very similar accuracy").
    for cls in SYSTEMS:
        assert loss(cls.name, 0.6) < 0.01

    # Accuracy still improves with the fraction.
    for cls in SYSTEMS:
        assert loss(cls.name, 0.9) <= loss(cls.name, 0.1)

    # The stratified advantage persists, if small, at the low end.
    assert loss("spark-streamapprox", 0.1) <= loss("spark-srs", 0.1)
