"""Figure 8(a): network-traffic case study — throughput vs sampling fraction.

Paper setting (§6.2): CAIDA-derived NetFlow records, query = total traffic
size per protocol (TCP/UDP/ICMP) per sliding window.  Results: Spark-based
StreamApprox >2× over Spark-STS and ≈ Spark-SRS; Flink-based StreamApprox
another ≈1.6× on top; at 60% sampling, 1.3×/1.35× over the native
Spark/Flink executions; and — the crossover — native Spark beats
Spark-STS, whose groupBy/sort/synchronization costs exceed the savings of
sampling.
"""

from repro.metrics.collector import ExperimentCollector
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
)

from conftest import NETFLOW_QUERY, WINDOW, config, publish, run_sweep

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8)
SAMPLED = (
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
)


def sweep(stream):
    collector = ExperimentCollector("fig8a_netflow_throughput")
    runs = []
    for fraction in FRACTIONS:
        runs.extend(
            (fraction, cls(NETFLOW_QUERY, WINDOW, config(fraction)), stream)
            for cls in SAMPLED
        )
    for cls in (NativeSparkSystem, NativeFlinkSystem):
        runs.append(("native", cls(NETFLOW_QUERY, WINDOW, config(1.0)), stream))
    return run_sweep(collector, runs)


def test_fig8a(benchmark, netflow_case_stream):
    collector = benchmark.pedantic(
        sweep, args=(netflow_case_stream,), rounds=1, iterations=1
    )
    publish(benchmark, collector, metrics=("throughput",))

    thr = lambda system, setting: collector.value(system, setting, "throughput")  # noqa: E731

    # StreamApprox ≈ 2× STS (paper: "more than 2×" at low fractions).
    assert thr("spark-streamapprox", 0.1) / thr("spark-sts", 0.1) > 2.0
    assert thr("spark-streamapprox", 0.6) / thr("spark-sts", 0.6) > 1.4

    # StreamApprox ≈ SRS throughput.
    assert 0.85 < thr("spark-streamapprox", 0.6) / thr("spark-srs", 0.6) < 1.5

    # Flink flavour on top at every fraction.
    for fraction in FRACTIONS:
        assert thr("flink-streamapprox", fraction) > thr("spark-streamapprox", fraction)

    # Speedups over the native executions at 60% (paper: 1.3× / 1.35×).
    assert thr("spark-streamapprox", 0.6) / thr("native-spark", "native") > 1.15
    assert thr("flink-streamapprox", 0.6) / thr("native-flink", "native") > 1.1

    # The surprising crossover: native Spark outruns Spark-STS.
    assert thr("native-spark", "native") > thr("spark-sts", 0.6)
