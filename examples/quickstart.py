#!/usr/bin/env python3
"""Quickstart: approximate window means over a skewed synthetic stream.

Builds the paper's §5.1 scenario end to end:

1. generate three Gaussian sub-streams (A common and small-valued, C rare
   and large-valued),
2. run Flink-based StreamApprox at a 60% sampling fraction with the
   standard 10 s window sliding by 5 s,
3. print each pane's approximate mean ± its rigorous error bound next to
   the exact (unsampled) answer,
4. show what plain simple-random sampling would have done on the same
   stream — the stratification pay-off in one table.

Run:  python examples/quickstart.py
"""

from repro import (
    FlinkStreamApproxSystem,
    SparkSRSSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads import stream_by_rates


def main() -> None:
    # Sub-stream C is rare (100 items/s vs A's 8000/s) but its values are
    # three orders of magnitude larger — the classic long-tail setup where
    # uniform sampling goes wrong.
    stream = stream_by_rates(
        {"A": 8000, "B": 2000, "C": 100}, duration=30, seed=1
    )
    print(f"replayed {len(stream):,} items over 30 s "
          f"(sub-streams A:B:C = 8000:2000:100 items/s)\n")

    query = StreamQuery(
        key_fn=lambda item: item[0],  # stratify by sub-stream source
        value_fn=lambda item: item[1],
        kind="mean",
        name="window-mean",
    )
    window = WindowConfig(length=10.0, slide=5.0)
    config = SystemConfig(sampling_fraction=0.6, seed=7)

    approx = FlinkStreamApproxSystem(query, window, config).run(stream)
    srs = SparkSRSSystem(query, window, config).run(stream)
    srs_by_end = {r.end: r for r in srs.results}

    print(f"{'pane end':>8} {'exact':>10} {'StreamApprox (±95% CI)':>26} "
          f"{'SRS baseline':>14}")
    for pane in approx.results:
        srs_pane = srs_by_end.get(pane.end)
        srs_text = f"{srs_pane.estimate:10.2f}" if srs_pane else "-"
        print(
            f"{pane.end:8.0f} {pane.exact:10.2f} "
            f"{pane.estimate:12.2f} ± {pane.error.margin:8.2f} {srs_text:>14}"
        )

    print(f"\nthroughput  : {approx.throughput:,.0f} items/s (simulated cluster)")
    print(f"mean loss   : StreamApprox {approx.mean_accuracy_loss():.3%}  "
          f"vs  SRS {srs.mean_accuracy_loss():.3%}")
    print(f"sampled     : {approx.results[1].sampled_items:,} of "
          f"{approx.results[1].total_items:,} items in a mid-run pane")


if __name__ == "__main__":
    main()
