#!/usr/bin/env python3
"""Case study 1 (§6.2): real-time network-traffic monitoring.

Measures the total TCP / UDP / ICMP traffic volume per sliding window over
a CAIDA-like NetFlow stream, end to end through the aggregator substrate:

1. three `SubStreamProducer`s (one per protocol) publish flow records into
   a Kafka-like topic via the replay tool,
2. a consumer drains the merged, time-ordered stream,
3. Spark-based StreamApprox answers the per-protocol traffic query at a
   40% sampling fraction with error bounds,
4. the same query runs on the native (unsampled) Spark path for a
   throughput / accuracy comparison.

Run:  python examples/network_monitoring.py
"""

from repro import (
    NativeSparkSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.aggregator import Broker, Consumer, ReplayTool
from repro.workloads.netflow import (
    PROTOCOL_MIX,
    flow_bytes,
    flow_protocol,
    generate_flows,
)

import random


def publish_through_aggregator(total_rate: float, duration: float, seed: int = 3):
    """Replay per-protocol flow sub-streams through the broker (Figure 1)."""
    broker = Broker()
    tool = ReplayTool(broker, "netflow", num_partitions=4)
    base = random.Random(seed)
    substreams = {}
    for protocol, share in PROTOCOL_MIX.items():
        rate = total_rate * share
        flows = generate_flows(protocol, int(rate * duration), random.Random(base.getrandbits(64)))
        substreams[protocol] = (rate, flows)
    sent = tool.replay(substreams)
    consumer = Consumer(broker, "netflow")
    # Records carry (key=protocol, value=FlowRecord); systems consume
    # (timestamp, (protocol, record)) items.
    stream = [(r.timestamp, (r.key, r.value)) for r in consumer.poll()]
    return sent, stream


def main() -> None:
    sent, stream = publish_through_aggregator(total_rate=20_000, duration=30)
    print(f"replayed {sent:,} NetFlow records through the aggregator "
          f"(mix: {', '.join(f'{p} {s:.1%}' for p, s in PROTOCOL_MIX.items())})\n")

    query = StreamQuery(
        key_fn=flow_protocol,
        value_fn=flow_bytes,
        kind="sum",
        group_fn=flow_protocol,
        name="traffic-per-protocol",
    )
    window = WindowConfig(length=10.0, slide=5.0)

    approx = SparkStreamApproxSystem(
        query, window, SystemConfig(sampling_fraction=0.4, seed=4)
    ).run(stream)
    native = NativeSparkSystem(query, window, SystemConfig(sampling_fraction=1.0)).run(stream)

    print(f"{'pane end':>8} {'protocol':>9} {'approx MB':>11} {'exact MB':>10} {'loss':>8}")
    for pane in approx.results:
        for protocol in ("TCP", "UDP", "ICMP"):
            approx_mb = pane.groups.get(protocol, 0.0) / 1e6
            exact_mb = pane.exact_groups.get(protocol, 0.0) / 1e6
            loss = abs(approx_mb - exact_mb) / exact_mb if exact_mb else 0.0
            print(f"{pane.end:8.0f} {protocol:>9} {approx_mb:11.2f} "
                  f"{exact_mb:10.2f} {loss:8.2%}")

    speedup = approx.throughput / native.throughput
    print(f"\nStreamApprox : {approx.throughput:,.0f} items/s, "
          f"loss {approx.mean_accuracy_loss():.3%}")
    print(f"native Spark : {native.throughput:,.0f} items/s (exact)")
    print(f"speedup      : {speedup:.2f}× at 40% sampling "
          f"(paper reports 1.3× at 60% on this workload)")


if __name__ == "__main__":
    main()
