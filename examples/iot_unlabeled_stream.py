#!/usr/bin/env python3
"""Online stratification of an unlabeled stream (§7 "Stratified sampling").

The paper's IoT motivating case: temperature sensors across a city, where
each sensor's readings follow its own distribution.  Here the source
labels are *lost* upstream (a common reality), so OASRS cannot stratify by
source.  §7 suggests bootstrap- or classifier-based pre-processing; this
example composes both implementations with OASRS:

1. a mixed, unlabeled reading stream from three hidden sensor groups
   (street level ~12 °C, rooftops ~18 °C, datacenter inlets ~27 °C),
2. a `QuantileStratifier` (bootstrap flavour) and a
   `GaussianMixtureStratifier` (semi-supervised flavour, seeded with a few
   labelled calibration readings) recover strata on the fly,
3. OASRS samples each recovered stratum and the city-wide mean is
   estimated with error bounds — versus naive unstratified sampling.

Run:  python examples/iot_unlabeled_stream.py
"""

import random
import statistics

from repro import OASRSSampler, WaterFillingAllocation, approximate_mean, estimate_error
from repro.core.stratify import GaussianMixtureStratifier, QuantileStratifier


def sensor_stream(n: int, rng: random.Random):
    """Unlabeled readings from three hidden sensor populations."""
    readings = []
    for _ in range(n):
        r = rng.random()
        if r < 0.70:
            readings.append(rng.gauss(12.0, 1.5))  # street-level sensors
        elif r < 0.95:
            readings.append(rng.gauss(18.0, 1.0))  # rooftop sensors
        else:
            readings.append(rng.gauss(27.0, 0.8))  # datacenter inlets
    return readings


def sample_with(key_fn, readings, budget, seed, strata_hint):
    sampler = OASRSSampler(
        WaterFillingAllocation(budget, expected_strata=strata_hint),
        key_fn=key_fn,
        rng=random.Random(seed),
    )
    sampler.offer_many(readings)
    sample = sampler.close_interval()
    bound = estimate_error(approximate_mean(sample), confidence=0.95)
    return sample, bound


def main() -> None:
    rng = random.Random(42)
    readings = sensor_stream(60_000, rng)
    truth = statistics.fmean(readings)
    budget = 600  # sample ≈ 1% of the interval
    print(f"{len(readings):,} unlabeled readings; true city mean "
          f"{truth:.3f} °C; sampling budget {budget} readings (1%)\n")

    # Bootstrap flavour: quantile buckets learned from a distribution sketch.
    quantile = QuantileStratifier(3, rng=random.Random(1))
    q_sample, q_bound = sample_with(quantile.assign, readings, budget, 2, 3)

    # Semi-supervised flavour: seeded with a few labelled calibration reads.
    mixture = GaussianMixtureStratifier(
        3, seeds=[[11.5, 12.5], [17.8, 18.3], [26.9, 27.2]]
    )
    m_sample, m_bound = sample_with(mixture.assign, readings, budget, 3, 3)

    # Baseline: no stratification (single stratum = plain reservoir).
    flat_sample, flat_bound = sample_with(lambda _v: "all", readings, budget, 4, 1)

    print(f"{'method':>24} {'estimate':>9} {'±95% CI':>8} {'|err|':>8} {'strata':>7}")
    for name, sample, bound in (
        ("quantile (bootstrap)", q_sample, q_bound),
        ("mixture (semi-sup.)", m_sample, m_bound),
        ("unstratified", flat_sample, flat_bound),
    ):
        print(f"{name:>24} {bound.value:9.3f} {bound.margin:8.3f} "
              f"{abs(bound.value - truth):8.4f} {len(sample):7d}")

    print("\nlearned structure:")
    print(f"  quantile cut points : "
          f"{', '.join(f'{c:.1f}°C' for c in quantile.boundaries)}")
    print(f"  mixture centres     : "
          f"{', '.join(f'{c:.1f}°C' for c in mixture.centres)}")
    tighter = (q_bound.margin + m_bound.margin) / 2
    print(f"\nstratified CIs are {flat_bound.margin / tighter:.1f}× tighter than "
          f"unstratified at the same budget")


if __name__ == "__main__":
    main()
