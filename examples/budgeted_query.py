#!/usr/bin/env python3
"""Query budgets: driving the sample size from a user-facing target (§7).

The paper assumes a *virtual cost function* translating a query budget
(accuracy, latency, or resources) into a sample size, plus an adaptive
feedback loop that re-tunes the size when the measured error exceeds the
target.  This example exercises both, directly on the core API:

1. an **accuracy budget** (±0.5% CI half-width) is converted to a
   per-stratum sample size via the inverted Equation 9,
2. a **latency budget** and a **resource budget** are converted through
   the Pulsar-style token cost model,
3. the adaptive controller then runs a live loop: interval after interval
   it measures the realised error bound and grows/decays the sample size
   until the target is met at minimum cost,
4. the same loop end-to-end: ``SystemConfig(budget=…)`` hands the whole
   plan → drive → observe → re-budget cycle to the unified runtime, which
   records the per-interval trajectory on the `SystemReport`.

Run:  python examples/budgeted_query.py
"""

import random

from repro import (
    AccuracyBudget,
    AdaptiveSampleSizeController,
    LatencyBudget,
    NativeStreamApproxSystem,
    OASRSSampler,
    ResourceBudget,
    StreamQuery,
    SystemConfig,
    VirtualCostFunction,
    WaterFillingAllocation,
    WindowConfig,
    approximate_mean,
    estimate_error,
)
from repro.core.query import StratumStats
from repro.metrics import format_trajectory
from repro.workloads.drift import drifting_stream, rate_swap_schedule


def interval_items(rng):
    items = [("sensor-1", rng.gauss(21.0, 2.0)) for _ in range(6000)]
    items += [("sensor-2", rng.gauss(24.0, 3.0)) for _ in range(3000)]
    rng.shuffle(items)
    return items


def main() -> None:
    rng = random.Random(2)

    # --- 1. budget → sample size via the virtual cost function ------------
    vcf = VirtualCostFunction(cores=8)
    # Seed the cost function with one observed interval (Algorithm 2 feeds
    # back each interval's statistics).
    sampler = OASRSSampler(
        WaterFillingAllocation(4000, expected_strata=2),
        key_fn=lambda it: it[0],
        rng=random.Random(0),
    )
    sampler.offer_many(interval_items(rng))
    first = sampler.close_interval()
    result = approximate_mean(first, lambda it: it[1])
    vcf.observe(result.strata)

    for budget in (
        AccuracyBudget(target_margin=0.05, confidence=0.95),
        LatencyBudget(max_seconds=0.05),
        ResourceBudget(workers=2, cores_per_worker=4),
    ):
        size = vcf.sample_size(budget, expected_items_per_interval=9000)
        fraction = vcf.sampling_fraction(budget, 9000)
        print(f"{type(budget).__name__:16s} → per-stratum sample size "
              f"{size:6d}  (≈ {fraction:.0%} overall)")

    # --- 2. the adaptive feedback loop -------------------------------------
    print("\nadaptive loop toward a ±0.5% relative error target:")
    controller = AdaptiveSampleSizeController(
        initial_size=100, target_relative_margin=0.005
    )
    policy = WaterFillingAllocation(controller.current_size, expected_strata=2)
    live = OASRSSampler(policy, key_fn=lambda it: it[0], rng=random.Random(1))
    for interval in range(1, 11):
        live.offer_many(interval_items(rng))
        sample = live.close_interval()
        bound = estimate_error(approximate_mean(sample, lambda it: it[1]))
        print(f"  interval {interval:2d}: size={policy.total:6d}  "
              f"mean={bound.value:6.2f} ± {bound.margin:5.3f} "
              f"({bound.relative_margin:.3%} relative)")
        policy.total = controller.update(bound.relative_margin)
    print("  → converged" if bound.relative_margin <= 0.005 else "  → still adapting")

    # --- 3. the same loop end-to-end, through the runtime -------------------
    # A rate swap halfway through the run shifts which sub-stream dominates;
    # the budget controller re-derives each interval's sample size from the
    # observed statistics and the measured margin.
    print("\nend-to-end: SystemConfig(budget=AccuracyBudget(0.5)) on a drift stream")
    stream = drifting_stream(rate_swap_schedule(2000, 40, 10.0), seed=5)
    query = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1],
                        kind="mean", name="drift-mean")
    system = NativeStreamApproxSystem(
        query,
        WindowConfig(length=10.0, slide=5.0),
        SystemConfig(sampling_fraction=0.05,  # first-interval seed only
                     budget=AccuracyBudget(target_margin=0.5)),
    )
    report = system.run(stream)
    print(format_trajectory(report, target_margin=0.5))


if __name__ == "__main__":
    main()
