#!/usr/bin/env python3
"""Case study 2 (§6.3): NYC taxi ride analytics.

Computes the average trip distance per start borough per sliding window on
a DEBS-2015-like ride stream, comparing Spark-based StreamApprox with the
Spark SRS baseline.  Staten Island contributes ~0.5% of pickups, so SRS
intermittently loses the borough entirely — StreamApprox's per-stratum
reservoirs never do.

Run:  python examples/taxi_analytics.py
"""

from repro import (
    SparkSRSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.taxi import BOROUGH_MIX, ride_borough, ride_distance, taxi_stream


def main() -> None:
    # A quiet-hour rate with an aggressive 1% sampling fraction: Staten
    # Island pickups are rare enough that uniform sampling keeps losing
    # the borough while OASRS's per-stratum reservoir never does.
    stream = taxi_stream(total_rate=2_000, duration=60, seed=9)
    print(f"replayed {len(stream):,} taxi rides "
          f"(Manhattan {BOROUGH_MIX['Manhattan']:.0%} of pickups, "
          f"Staten Island {BOROUGH_MIX['Staten Island']:.1%})\n")

    query = StreamQuery(
        key_fn=ride_borough,
        value_fn=ride_distance,
        kind="mean",
        group_fn=ride_borough,
        name="distance-per-borough",
    )
    window = WindowConfig(length=10.0, slide=5.0)
    config = SystemConfig(sampling_fraction=0.01, seed=10)

    approx = SparkStreamApproxSystem(query, window, config).run(stream)
    srs = SparkSRSSystem(query, window, config).run(stream)
    srs_by_end = {r.end: r for r in srs.results}

    pane = approx.results[len(approx.results) // 2]  # a mid-run pane
    srs_pane = srs_by_end[pane.end]
    print(f"window ending at t={pane.end:.0f}s — average trip distance (miles):")
    print(f"{'borough':>15} {'exact':>8} {'StreamApprox':>13} {'SRS':>8}")
    for borough in sorted(pane.exact_groups, key=lambda b: -BOROUGH_MIX.get(b, 0)):
        exact = pane.exact_groups[borough]
        ours = pane.groups.get(borough)
        theirs = srs_pane.groups.get(borough)
        print(f"{borough:>15} {exact:8.2f} "
              f"{ours:13.2f} " + (f"{theirs:8.2f}" if theirs is not None else f"{'MISSED':>8}"))

    missed_panes = sum(
        1 for r in srs.results if set(r.exact_groups) - set(r.groups)
    )
    print(f"\nSRS lost at least one borough in {missed_panes} of "
          f"{len(srs.results)} panes; StreamApprox lost "
          f"{sum(1 for r in approx.results if set(r.exact_groups) - set(r.groups))}.")
    print(f"mean accuracy loss: StreamApprox {approx.mean_accuracy_loss():.3%} "
          f"vs SRS {srs.mean_accuracy_loss():.3%} at a 1% sampling fraction")


if __name__ == "__main__":
    main()
